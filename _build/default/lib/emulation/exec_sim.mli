(** Discrete-event simulation of an emulation experiment over a mapped
    virtual environment. See {!App} for the application model.

    The input mapping must be complete and valid (every guest placed,
    every inter-host virtual link routed); run
    {!Hmn_mapping.Constraints.check} first when in doubt. Because valid
    mappings reserve each link's bandwidth end-to-end (Eq. 9), network
    transfers proceed at the virtual link's requested rate; what varies
    across mappings is CPU contention, path latency, and how many
    messages are intra-host — exactly the quantities the objective
    function is meant to proxy. *)

type result = {
  makespan_s : float;  (** emulated experiment duration *)
  events : int;  (** simulator events processed *)
  max_host_slowdown : float;
      (** worst ratio of requested to delivered CPU over hosts (1.0 =
          no host oversubscribed) *)
  intra_host_messages : int;
  inter_host_messages : int;
}

val run : ?app:App.t -> Hmn_mapping.Mapping.t -> result
(** Raises [Invalid_argument] when a guest is unplaced or an inter-host
    virtual link is unrouted. *)
