(** The synthetic distributed application run on the emulated
    environment.

    The paper measures, for every mapping, "the time to run the
    experiment … in the simulated environment" (Table 3) and correlates
    it with the objective function. Its CloudSim experiment model is
    not published, so we substitute the closest standard model that
    exercises the same mechanisms (see DESIGN.md): a BSP
    (bulk-synchronous parallel) application over the virtual topology.

    Each guest executes [supersteps] rounds; a round is a compute
    chunk of [vproc(g) * chunk_seconds] instructions followed by one
    message per incident virtual link. A message carries
    [vbw * msg_seconds] of traffic: it occupies the sender's NIC for
    [msg_seconds] (sends serialize) and arrives after the mapped
    path's accumulated latency; messages between co-located guests are
    free and instantaneous — precisely the benefit the Hosting stage's
    affinity packing buys.

    Two CPU models are provided:

    - [Proportional_share] (default): work-conserving time-shared
      scheduling, as in CloudSim's time-shared scheduler — every
      resident computing guest receives host capacity in proportion to
      its requested [vproc], with no cap, so a host's superstep time
      scales with its load fraction [sum vproc / proc]. This is the
      model under which the paper's rationale for Eq. (10) — "a host
      with high load … decreases the performance of the virtual
      machines running on it, delaying the experiment" — holds, and it
      reproduces the objective↔runtime correlation of §5.2.
    - [Capped_fair_share]: the same sharing but capped at each guest's
      requested speed (a testbed that pins VMs at their configured
      MIPS). Only oversubscribed hosts slow down; used to study how
      much of the correlation survives strict capping. *)

type cpu_model = Proportional_share | Capped_fair_share

type t = {
  supersteps : int;
  chunk_seconds : float;
      (** nominal compute time per superstep at the guest's requested
          speed *)
  msg_seconds : float;  (** per-message NIC occupancy *)
  cpu_model : cpu_model;
}

val default : t
(** 4 supersteps, 0.3 s chunks, 0.01 s messages, proportional share —
    chosen so the emulated experiment lands in the paper's 0.5–3 s
    range. *)

val make :
  ?cpu_model:cpu_model ->
  supersteps:int ->
  chunk_seconds:float ->
  msg_seconds:float ->
  unit ->
  t
(** Raises [Invalid_argument] on non-positive supersteps or negative
    durations. *)
