module Graph = Hmn_graph.Graph
module Generators = Hmn_graph.Generators

let all_hosts nodes = Array.for_all Node.can_host nodes

let labelled shape link = Graph.map_labels shape ~f:(fun ~eid:_ () -> link)

let torus ~hosts ~rows ~cols ~link =
  if rows * cols <> Array.length hosts then
    invalid_arg "Topology.torus: rows * cols <> host count";
  if not (all_hosts hosts) then invalid_arg "Topology.torus: non-host node given";
  Cluster.create ~nodes:(Array.copy hosts)
    ~graph:(labelled (Generators.torus2d ~rows ~cols) link)

let ring ~hosts ~link =
  if not (all_hosts hosts) then invalid_arg "Topology.ring: non-host node given";
  Cluster.create ~nodes:(Array.copy hosts)
    ~graph:(labelled (Generators.ring (Array.length hosts)) link)

let line ~hosts ~link =
  if not (all_hosts hosts) then invalid_arg "Topology.line: non-host node given";
  Cluster.create ~nodes:(Array.copy hosts)
    ~graph:(labelled (Generators.line (Array.length hosts)) link)

let switches_needed ~n_hosts ~ports =
  if ports < 3 then invalid_arg "Topology.switches_needed: ports >= 3 required";
  if n_hosts < 1 then invalid_arg "Topology.switches_needed: at least one host";
  (* A chain of s switches spends 2*(s-1) ports on inter-switch cables,
     leaving s*ports - 2*(s-1) for hosts. Find the least such s. *)
  let rec search s =
    if (s * ports) - (2 * (s - 1)) >= n_hosts then s else search (s + 1)
  in
  search 1

let mesh ~hosts ~rows ~cols ~link =
  if rows * cols <> Array.length hosts then
    invalid_arg "Topology.mesh: rows * cols <> host count";
  if not (all_hosts hosts) then invalid_arg "Topology.mesh: non-host node given";
  let id r c = (r * cols) + c in
  let graph = Graph.create ~n:(rows * cols) () in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Graph.add_edge graph (id r c) (id r (c + 1)) link);
      if r + 1 < rows then ignore (Graph.add_edge graph (id r c) (id (r + 1) c) link)
    done
  done;
  Cluster.create ~nodes:(Array.copy hosts) ~graph

let hypercube ~hosts ~link =
  let n = Array.length hosts in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Topology.hypercube: host count must be a power of two";
  if not (all_hosts hosts) then invalid_arg "Topology.hypercube: non-host node given";
  let graph = Graph.create ~n () in
  let bit = ref 1 in
  while !bit < n do
    for v = 0 to n - 1 do
      if v land !bit = 0 then ignore (Graph.add_edge graph v (v lor !bit) link)
    done;
    bit := !bit lsl 1
  done;
  Cluster.create ~nodes:(Array.copy hosts) ~graph

let fat_tree ~hosts ~k ~link =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even, >= 2";
  let half = k / 2 in
  let n_hosts = k * half * half in
  if Array.length hosts <> n_hosts then
    invalid_arg "Topology.fat_tree: host count must be k^3/4";
  if not (all_hosts hosts) then invalid_arg "Topology.fat_tree: non-host node given";
  let n_edge = k * half and n_agg = k * half and n_core = half * half in
  let edge_base = n_hosts in
  let agg_base = edge_base + n_edge in
  let core_base = agg_base + n_agg in
  let nodes =
    Array.concat
      [
        hosts;
        Array.init n_edge (fun i -> Node.switch ~name:(Printf.sprintf "edge%d" i));
        Array.init n_agg (fun i -> Node.switch ~name:(Printf.sprintf "agg%d" i));
        Array.init n_core (fun i -> Node.switch ~name:(Printf.sprintf "core%d" i));
      ]
  in
  let graph = Graph.create ~n:(Array.length nodes) () in
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      let edge_sw = edge_base + (pod * half) + e in
      (* Hosts under this edge switch. *)
      for h = 0 to half - 1 do
        let host = (pod * half * half) + (e * half) + h in
        ignore (Graph.add_edge graph host edge_sw link)
      done;
      (* Full bipartite edge-agg mesh within the pod. *)
      for a = 0 to half - 1 do
        ignore (Graph.add_edge graph edge_sw (agg_base + (pod * half) + a) link)
      done
    done;
    (* Aggregation switch a of each pod connects to core switches
       a*half .. a*half + half - 1. *)
    for a = 0 to half - 1 do
      let agg_sw = agg_base + (pod * half) + a in
      for c = 0 to half - 1 do
        ignore (Graph.add_edge graph agg_sw (core_base + (a * half) + c) link)
      done
    done
  done;
  Cluster.create ~nodes ~graph

let switched ~hosts ~ports ~link =
  if not (all_hosts hosts) then invalid_arg "Topology.switched: non-host node given";
  let h = Array.length hosts in
  let s = switches_needed ~n_hosts:h ~ports in
  let nodes =
    Array.append hosts
      (Array.init s (fun i -> Node.switch ~name:(Printf.sprintf "sw%d" i)))
  in
  let graph = Graph.create ~n:(h + s) () in
  (* Chain the switches. *)
  for i = 0 to s - 2 do
    ignore (Graph.add_edge graph (h + i) (h + i + 1) link)
  done;
  (* Fill switches with hosts in order, respecting per-switch free
     ports: interior switches lose two ports to the chain, end switches
     one (or none when s = 1). *)
  let free_ports i =
    if s = 1 then ports
    else if i = 0 || i = s - 1 then ports - 1
    else ports - 2
  in
  let next_host = ref 0 in
  for i = 0 to s - 1 do
    let quota = ref (free_ports i) in
    while !quota > 0 && !next_host < h do
      ignore (Graph.add_edge graph !next_host (h + i) link);
      incr next_host;
      decr quota
    done
  done;
  assert (!next_host = h);
  Cluster.create ~nodes ~graph
