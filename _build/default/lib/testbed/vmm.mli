(** Virtual machine monitor overhead.

    The paper (§3.1) requires that the resources consumed by the VMM on
    each host be deducted from that host's availability before mapping.
    This module is that deduction. *)

type t = {
  mips : float;
  mem_mb : float;
  stor_gb : float;
}

val none : t
(** Zero overhead. *)

val xen_like : t
(** A representative paravirtualized-VMM footprint (64 MB dom0 memory,
    4 GB system storage, 50 MIPS of background CPU). Default for the
    generated clusters. *)

val make : mips:float -> mem_mb:float -> stor_gb:float -> t
(** Raises [Invalid_argument] on negative components. *)

val deduct : Resources.t -> t -> Resources.t
(** Host capacity after the VMM takes its share; components clamp at
    zero (an overhead larger than the host leaves nothing, not a
    negative capacity). *)
