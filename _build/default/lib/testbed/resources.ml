type t = {
  mips : float;
  mem_mb : float;
  stor_gb : float;
}

let make ~mips ~mem_mb ~stor_gb =
  let check name x =
    if not (Float.is_finite x) || x < 0. then
      invalid_arg ("Resources.make: bad " ^ name)
  in
  check "mips" mips;
  check "mem_mb" mem_mb;
  check "stor_gb" stor_gb;
  { mips; mem_mb; stor_gb }

let zero = { mips = 0.; mem_mb = 0.; stor_gb = 0. }

let add a b =
  { mips = a.mips +. b.mips; mem_mb = a.mem_mb +. b.mem_mb; stor_gb = a.stor_gb +. b.stor_gb }

let sub a b =
  { mips = a.mips -. b.mips; mem_mb = a.mem_mb -. b.mem_mb; stor_gb = a.stor_gb -. b.stor_gb }

let scale k a = { mips = k *. a.mips; mem_mb = k *. a.mem_mb; stor_gb = k *. a.stor_gb }

let sum xs = List.fold_left add zero xs

let le a b = a.mips <= b.mips && a.mem_mb <= b.mem_mb && a.stor_gb <= b.stor_gb

let fits_mem_stor ~demand ~avail =
  demand.mem_mb <= avail.mem_mb && demand.stor_gb <= avail.stor_gb

let equal ?eps a b =
  Hmn_prelude.Float_ext.approx ?eps a.mips b.mips
  && Hmn_prelude.Float_ext.approx ?eps a.mem_mb b.mem_mb
  && Hmn_prelude.Float_ext.approx ?eps a.stor_gb b.stor_gb

let pp ppf t =
  Format.fprintf ppf "{cpu=%.1fMIPS; mem=%a; stor=%a}" t.mips
    Hmn_prelude.Units.pp_memory t.mem_mb Hmn_prelude.Units.pp_storage t.stor_gb

let to_string t = Format.asprintf "%a" pp t
