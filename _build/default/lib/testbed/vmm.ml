type t = {
  mips : float;
  mem_mb : float;
  stor_gb : float;
}

let none = { mips = 0.; mem_mb = 0.; stor_gb = 0. }

let xen_like = { mips = 50.; mem_mb = 64.; stor_gb = 4. }

let make ~mips ~mem_mb ~stor_gb =
  if mips < 0. || mem_mb < 0. || stor_gb < 0. then
    invalid_arg "Vmm.make: negative overhead";
  { mips; mem_mb; stor_gb }

let deduct (cap : Resources.t) t =
  Resources.make
    ~mips:(Float.max 0. (cap.Resources.mips -. t.mips))
    ~mem_mb:(Float.max 0. (cap.Resources.mem_mb -. t.mem_mb))
    ~stor_gb:(Float.max 0. (cap.Resources.stor_gb -. t.stor_gb))
