(** Resource vectors: CPU (MIPS), memory (MB), storage (GB).

    Used both for host capacities and guest demands. Arithmetic is
    component-wise. The paper treats memory and storage as hard
    constraints and CPU as the quantity to balance; that asymmetry is
    expressed by {!fits_mem_stor} versus {!le}. *)

type t = {
  mips : float;
  mem_mb : float;
  stor_gb : float;
}

val make : mips:float -> mem_mb:float -> stor_gb:float -> t
(** Raises [Invalid_argument] if any component is negative or
    non-finite. *)

val zero : t

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] may produce negative components (residual CPU is allowed
    to go negative). *)

val scale : float -> t -> t
val sum : t list -> t

val le : t -> t -> bool
(** Component-wise [<=] on all three components. *)

val fits_mem_stor : demand:t -> avail:t -> bool
(** The paper's feasibility test (Eqs. 2–3): memory and storage of the
    demand fit in the availability; CPU is ignored. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
