(** A node of the physical cluster: a workstation (host) that can run
    guests, or a network switch that only forwards traffic.

    Switches exist because the paper's second topology connects hosts
    through cascaded 64-port switches; modelling them as zero-capacity
    non-hosting nodes lets every routing algorithm work on one uniform
    graph. *)

type kind = Host | Switch

type t = {
  name : string;
  kind : kind;
  capacity : Resources.t;
      (** usable capacity (already net of VMM overhead for hosts; zero
          for switches) *)
}

val host : name:string -> capacity:Resources.t -> t
val switch : name:string -> t

val can_host : t -> bool
val pp : Format.formatter -> t -> unit
