(** The physical environment: a graph [c = (C, E_c)] of nodes and links
    (paper §3.2), where some nodes are hosts (can run guests) and some
    are switches (forwarding only). *)

type t

val create : nodes:Node.t array -> graph:Link.t Hmn_graph.Graph.t -> t
(** Raises [Invalid_argument] when the node array length differs from
    the graph's node count, or the graph is directed. *)

val graph : t -> Link.t Hmn_graph.Graph.t
val n_nodes : t -> int
val node : t -> int -> Node.t

val host_ids : t -> int array
(** Ids of the nodes that can run guests, ascending. The array is owned
    by the cluster: do not mutate. *)

val n_hosts : t -> int
val is_host : t -> int -> bool

val capacity : t -> int -> Resources.t
(** Usable capacity of a node (zero for switches). *)

val total_capacity : t -> Resources.t
(** Sum over hosts. *)

val link : t -> int -> Link.t
(** Label of a physical link by edge id. *)

val is_connected : t -> bool

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph description: node/host/link counts, capacity totals. *)
