(** A physical network link: bandwidth capacity and latency. *)

type t = {
  bandwidth_mbps : float;
  latency_ms : float;
}

val make : bandwidth_mbps:float -> latency_ms:float -> t
(** Raises [Invalid_argument] unless bandwidth is positive and latency
    non-negative. *)

val gigabit : t
(** The paper's physical link: 1 Gbps, 5 ms. *)

val pp : Format.formatter -> t -> unit
