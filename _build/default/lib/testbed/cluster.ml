module Graph = Hmn_graph.Graph

type t = {
  nodes : Node.t array;
  graph : Link.t Graph.t;
  host_ids : int array;
}

let create ~nodes ~graph =
  if Array.length nodes <> Graph.n_nodes graph then
    invalid_arg "Cluster.create: node array / graph size mismatch";
  if Graph.kind graph = Graph.Directed then
    invalid_arg "Cluster.create: cluster graphs are undirected";
  let host_ids =
    Array.of_list
      (List.filter
         (fun i -> Node.can_host nodes.(i))
         (List.init (Array.length nodes) Fun.id))
  in
  { nodes; graph; host_ids }

let graph t = t.graph
let n_nodes t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then invalid_arg "Cluster.node: out of range";
  t.nodes.(i)

let host_ids t = t.host_ids
let n_hosts t = Array.length t.host_ids
let is_host t i = Node.can_host (node t i)

let capacity t i = (node t i).Node.capacity

let total_capacity t =
  Array.fold_left
    (fun acc i -> Resources.add acc (capacity t i))
    Resources.zero t.host_ids

let link t eid = Graph.label t.graph eid

let is_connected t = Hmn_graph.Traversal.is_connected t.graph

let pp_summary ppf t =
  let switches = n_nodes t - n_hosts t in
  Format.fprintf ppf
    "cluster: %d hosts, %d switches, %d links; total %a" (n_hosts t) switches
    (Graph.n_edges t.graph) Resources.pp (total_capacity t)
