lib/testbed/resources.ml: Float Format Hmn_prelude List
