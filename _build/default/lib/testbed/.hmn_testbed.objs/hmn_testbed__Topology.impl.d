lib/testbed/topology.ml: Array Cluster Hmn_graph Node Printf
