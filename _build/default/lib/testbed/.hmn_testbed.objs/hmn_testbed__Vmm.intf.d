lib/testbed/vmm.mli: Resources
