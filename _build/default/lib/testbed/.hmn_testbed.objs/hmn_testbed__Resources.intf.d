lib/testbed/resources.mli: Format
