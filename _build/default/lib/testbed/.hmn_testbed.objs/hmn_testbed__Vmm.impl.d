lib/testbed/vmm.ml: Float Resources
