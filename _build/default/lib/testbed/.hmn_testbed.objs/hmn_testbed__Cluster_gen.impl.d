lib/testbed/cluster_gen.ml: Array Hmn_prelude Hmn_rng Link Node Printf Resources Topology Vmm
