lib/testbed/node.ml: Format Resources
