lib/testbed/cluster.ml: Array Format Fun Hmn_graph Link List Node Resources
