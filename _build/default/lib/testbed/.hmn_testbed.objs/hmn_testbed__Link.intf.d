lib/testbed/link.mli: Format
