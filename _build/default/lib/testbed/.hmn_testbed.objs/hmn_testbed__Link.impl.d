lib/testbed/link.ml: Format Hmn_prelude
