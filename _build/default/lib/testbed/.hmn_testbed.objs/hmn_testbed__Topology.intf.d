lib/testbed/topology.mli: Cluster Link Node
