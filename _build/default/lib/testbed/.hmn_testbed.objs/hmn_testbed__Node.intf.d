lib/testbed/node.mli: Format Resources
