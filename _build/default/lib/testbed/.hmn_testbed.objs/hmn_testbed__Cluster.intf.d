lib/testbed/cluster.mli: Format Hmn_graph Link Node Resources
