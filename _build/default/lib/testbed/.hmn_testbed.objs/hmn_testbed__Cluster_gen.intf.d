lib/testbed/cluster_gen.mli: Cluster Hmn_rng Link Node Vmm
