type kind = Host | Switch

type t = {
  name : string;
  kind : kind;
  capacity : Resources.t;
}

let host ~name ~capacity = { name; kind = Host; capacity }
let switch ~name = { name; kind = Switch; capacity = Resources.zero }

let can_host t = t.kind = Host

let pp ppf t =
  match t.kind with
  | Host -> Format.fprintf ppf "host %s %a" t.name Resources.pp t.capacity
  | Switch -> Format.fprintf ppf "switch %s" t.name
