let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let rec drop n = function
  | [] -> []
  | _ :: xs as l -> if n <= 0 then l else drop (n - 1) xs

let sum_by f xs = List.fold_left (fun acc x -> acc +. f x) 0. xs

let min_by f = function
  | [] -> invalid_arg "List_ext.min_by: empty list"
  | x :: xs ->
    let best, _ =
      List.fold_left
        (fun (b, bk) y ->
          let k = f y in
          if k < bk then (y, k) else (b, bk))
        (x, f x) xs
    in
    best

let max_by f xs = min_by (fun x -> -.f x) xs

let sort_by_desc key xs =
  List.stable_sort (fun a b -> Float.compare (key b) (key a)) xs

let group_by key xs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt tbl k with
      | Some acc -> Hashtbl.replace tbl k (x :: acc)
      | None ->
        Hashtbl.add tbl k [ x ];
        order := k :: !order)
    xs;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let pairs xs =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go xs

let unfold step init =
  let rec go s =
    match step s with None -> [] | Some (x, s') -> x :: go s'
  in
  go init
