lib/prelude/pretty_table.mli:
