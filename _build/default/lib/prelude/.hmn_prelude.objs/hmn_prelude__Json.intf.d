lib/prelude/json.mli:
