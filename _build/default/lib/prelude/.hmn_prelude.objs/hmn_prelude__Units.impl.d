lib/prelude/units.ml: Format
