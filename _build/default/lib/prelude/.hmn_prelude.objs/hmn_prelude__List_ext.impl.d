lib/prelude/list_ext.ml: Float Hashtbl List
