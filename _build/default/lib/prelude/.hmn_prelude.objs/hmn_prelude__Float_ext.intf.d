lib/prelude/float_ext.mli:
