lib/prelude/array_ext.mli:
