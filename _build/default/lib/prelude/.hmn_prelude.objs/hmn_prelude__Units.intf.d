lib/prelude/units.mli: Format
