lib/prelude/array_ext.ml: Array Float
