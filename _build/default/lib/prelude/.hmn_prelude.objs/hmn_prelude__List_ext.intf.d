lib/prelude/list_ext.mli:
