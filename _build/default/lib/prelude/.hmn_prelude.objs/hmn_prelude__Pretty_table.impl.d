lib/prelude/pretty_table.ml: Buffer List String
