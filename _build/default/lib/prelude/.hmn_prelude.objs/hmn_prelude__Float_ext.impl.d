lib/prelude/float_ext.ml: Array Float
