let mbps_of_gbps g = g *. 1000.
let mbps_of_kbps k = k /. 1000.
let mb_of_gb g = g *. 1024.
let gb_of_tb t = t *. 1024.
let seconds_of_ms ms = ms /. 1000.
let ms_of_seconds s = s *. 1000.

let pp_bandwidth ppf mbps =
  if mbps >= 1000. then Format.fprintf ppf "%.2fGbps" (mbps /. 1000.)
  else if mbps < 1. then Format.fprintf ppf "%.0fkbps" (mbps *. 1000.)
  else Format.fprintf ppf "%.2fMbps" mbps

let pp_memory ppf mb =
  if mb >= 1024. then Format.fprintf ppf "%.2fGB" (mb /. 1024.)
  else Format.fprintf ppf "%.0fMB" mb

let pp_storage ppf gb =
  if gb >= 1024. then Format.fprintf ppf "%.2fTB" (gb /. 1024.)
  else Format.fprintf ppf "%.0fGB" gb
