(** Unit conventions and conversions.

    The whole project uses one canonical unit per quantity, matching the
    granularity of the paper's Table 1:

    - bandwidth: megabits per second (Mbps)
    - latency: milliseconds (ms)
    - memory: megabytes (MB)
    - storage: gigabytes (GB)
    - CPU: MIPS
    - wall time: seconds

    These helpers convert the paper's mixed units into canonical ones. *)

val mbps_of_gbps : float -> float
val mbps_of_kbps : float -> float
val mb_of_gb : float -> float
val gb_of_tb : float -> float
val seconds_of_ms : float -> float
val ms_of_seconds : float -> float

val pp_bandwidth : Format.formatter -> float -> unit
(** Pretty-prints a bandwidth in Mbps, choosing kbps/Mbps/Gbps display. *)

val pp_memory : Format.formatter -> float -> unit
(** Pretty-prints a memory amount in MB, choosing MB/GB display. *)

val pp_storage : Format.formatter -> float -> unit
(** Pretty-prints a storage amount in GB, choosing GB/TB display. *)
