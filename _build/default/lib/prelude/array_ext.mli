(** Array helpers used by the heuristics and the experiment harness. *)

val sum_by : ('a -> float) -> 'a array -> float
(** [sum_by f xs] is the sum of [f x] over all elements. *)

val min_by : ('a -> float) -> 'a array -> 'a
(** [min_by f xs] returns an element minimizing [f]. Ties resolve to the
    earliest such element. Raises [Invalid_argument] on an empty array. *)

val max_by : ('a -> float) -> 'a array -> 'a
(** Dual of {!min_by}. *)

val arg_min : ('a -> float) -> 'a array -> int
(** Index of the first minimizing element. Raises on empty input. *)

val arg_max : ('a -> float) -> 'a array -> int
(** Index of the first maximizing element. Raises on empty input. *)

val sort_by : ('a -> float) -> 'a array -> unit
(** [sort_by key xs] sorts [xs] in place, ascending by [key]. Stable. *)

val sort_by_desc : ('a -> float) -> 'a array -> unit
(** [sort_by_desc key xs] sorts [xs] in place, descending by [key]. Stable. *)

val swap : 'a array -> int -> int -> unit
(** [swap xs i j] exchanges elements [i] and [j]. *)

val find_index_opt : ('a -> bool) -> 'a array -> int option
(** Index of the first element satisfying the predicate, if any. *)

val count : ('a -> bool) -> 'a array -> int
(** Number of elements satisfying the predicate. *)

val init_matrix : int -> int -> (int -> int -> 'a) -> 'a array array
(** [init_matrix rows cols f] builds a fresh [rows]×[cols] matrix where
    cell [(i, j)] holds [f i j]. *)
