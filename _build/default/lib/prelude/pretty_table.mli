(** Plain-text table rendering for the experiment reports.

    A table is a header row plus data rows; every row must have the same
    number of cells. Columns are padded to the widest cell and separated
    by two spaces; a rule of ['-'] separates the header from the body. *)

type align = Left | Right

type t

val create : ?aligns:align list -> header:string list -> unit -> t
(** [create ~header ()] starts a table. [aligns] defaults to [Right] for
    every column. Raises [Invalid_argument] if [aligns] is given with a
    length different from [header]. *)

val add_row : t -> string list -> unit
(** Appends a data row. Raises [Invalid_argument] on arity mismatch. *)

val render : t -> string
(** Renders the table, including a trailing newline. *)

val print : t -> unit
(** [print t] writes [render t] to standard output. *)
