(** Small numeric helpers shared across the project.

    All functions are total unless stated otherwise. *)

val approx : ?eps:float -> float -> float -> bool
(** [approx ?eps a b] is [true] when [a] and [b] differ by at most [eps]
    (default [1e-9]) in absolute terms, or by [eps] relative to the larger
    magnitude when both are large. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to the closed interval [[lo, hi]].
    Raises [Invalid_argument] if [lo > hi]. *)

val lerp : float -> float -> float -> float
(** [lerp a b t] linearly interpolates between [a] and [b]; [t = 0.] gives
    [a], [t = 1.] gives [b]. *)

val is_finite : float -> bool
(** [is_finite x] is [true] when [x] is neither infinite nor NaN. *)

val sum : float array -> float
(** Kahan-compensated sum of the array. [sum [||] = 0.]. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val round_to : int -> float -> float
(** [round_to digits x] rounds [x] to [digits] decimal places. *)
