let sum_by f xs = Array.fold_left (fun acc x -> acc +. f x) 0. xs

let extremum_index name better f xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg name;
  let best = ref 0 and best_key = ref (f xs.(0)) in
  for i = 1 to n - 1 do
    let k = f xs.(i) in
    if better k !best_key then begin
      best := i;
      best_key := k
    end
  done;
  !best

let arg_min f xs = extremum_index "Array_ext.arg_min: empty array" ( < ) f xs
let arg_max f xs = extremum_index "Array_ext.arg_max: empty array" ( > ) f xs
let min_by f xs = xs.(arg_min f xs)
let max_by f xs = xs.(arg_max f xs)

let sort_by key xs = Array.stable_sort (fun a b -> Float.compare (key a) (key b)) xs

let sort_by_desc key xs =
  Array.stable_sort (fun a b -> Float.compare (key b) (key a)) xs

let swap xs i j =
  let t = xs.(i) in
  xs.(i) <- xs.(j);
  xs.(j) <- t

let find_index_opt p xs =
  let n = Array.length xs in
  let rec go i = if i >= n then None else if p xs.(i) then Some i else go (i + 1) in
  go 0

let count p xs = Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 xs

let init_matrix rows cols f = Array.init rows (fun i -> Array.init cols (f i))
