type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent level =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * level) ' ')
    end
  in
  let rec emit level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> Buffer.add_string buf (number_to_string x)
    | Str s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          indent (level + 1);
          emit (level + 1) x)
        xs;
      indent level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          indent (level + 1);
          escape_string buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          emit (level + 1) v)
        fields;
      indent level;
      Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error (Printf.sprintf "expected '%c', found '%c'" c d)
    | None -> error (Printf.sprintf "expected '%c', found end of input" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error ("invalid literal; expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let s = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> error "invalid \\u escape"
  in
  let utf8_of_code buf code =
    (* Encode a Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> error "unterminated escape"
        | Some c -> (
          advance ();
          match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let code = parse_hex4 () in
            (* Surrogate pair handling. *)
            if code >= 0xD800 && code <= 0xDBFF then begin
              if !pos + 1 < n && input.[!pos] = '\\' && input.[!pos + 1] = 'u' then begin
                pos := !pos + 2;
                let low = parse_hex4 () in
                if low >= 0xDC00 && low <= 0xDFFF then
                  utf8_of_code buf
                    (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
                else error "invalid low surrogate"
              end
              else error "lone high surrogate"
            end
            else utf8_of_code buf code
          | c -> error (Printf.sprintf "invalid escape '\\%c'" c)));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    match float_of_string_opt s with
    | Some x -> x
    | None -> error ("invalid number: " ^ s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> error "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> error "expected ',' or ']' in array"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> error (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

(* ---- helpers ---- *)

let int i = Num (float_of_int i)
let float x = Num x
let str s = Str s
let list f xs = Arr (List.map f xs)

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" key))
  | _ -> Error (Printf.sprintf "expected an object while looking up %S" key)

let to_float = function
  | Num x -> Ok x
  | _ -> Error "expected a number"

let to_int = function
  | Num x when Float.is_integer x -> Ok (int_of_float x)
  | Num _ -> Error "expected an integer"
  | _ -> Error "expected a number"

let to_str = function
  | Str s -> Ok s
  | _ -> Error "expected a string"

let to_list = function
  | Arr xs -> Ok xs
  | _ -> Error "expected an array"

let ( let* ) = Result.bind

let map_result f xs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
      match f x with
      | Ok y -> go (y :: acc) rest
      | Error _ as e -> e)
  in
  go [] xs
