type align = Left | Right

type t = {
  header : string list;
  aligns : align list;
  mutable rows_rev : string list list;
}

let create ?aligns ~header () =
  let aligns =
    match aligns with
    | None -> List.map (fun _ -> Right) header
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Pretty_table.create: aligns/header arity mismatch";
      a
  in
  { header; aligns; rows_rev = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Pretty_table.add_row: arity mismatch";
  t.rows_rev <- row :: t.rows_rev

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows_rev in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w s -> max w (String.length s)) acc row)
      (List.map String.length t.header)
      rows
  in
  let buf = Buffer.create 1024 in
  let emit_row row =
    let cells =
      List.map2 (fun (w, a) s -> pad a w s) (List.combine widths t.aligns) row
    in
    Buffer.add_string buf (String.concat "  " cells);
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  let total =
    List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1))
  in
  Buffer.add_string buf (String.make (max total 0) '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)
