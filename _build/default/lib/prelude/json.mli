(** Minimal self-contained JSON: value type, printer, recursive-descent
    parser, and lookup helpers. Used by the persistence layer
    ([hmn_io]) so problem instances and mappings can be saved and
    reloaded without external dependencies.

    Numbers are floats (standard JSON semantics); integers round-trip
    exactly up to 2^53. Strings support the standard escapes including
    [\uXXXX] (encoded back as UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default false) adds newlines and two-space indent. *)

val of_string : string -> (t, string) result
(** Parses a complete JSON document; trailing garbage is an error. The
    error message includes the offending position. *)

(** {2 Construction helpers} *)

val int : int -> t
val float : float -> t
val str : string -> t
val list : ('a -> t) -> 'a list -> t

(** {2 Access helpers} — each returns [Error] with a path-aware message
    on shape mismatch. *)

val member : string -> t -> (t, string) result
val to_float : t -> (float, string) result
val to_int : t -> (int, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
(** Result bind, for decoder pipelines. *)

val map_result : ('a -> ('b, 'e) result) -> 'a list -> ('b list, 'e) result
(** All-or-nothing list traversal. *)
