(** List helpers. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (fewer if the list is shorter). [n < 0] is treated
    as [0]. *)

val drop : int -> 'a list -> 'a list
(** List without its first [n] elements. *)

val sum_by : ('a -> float) -> 'a list -> float
(** Sum of [f x] over the list. *)

val min_by : ('a -> float) -> 'a list -> 'a
(** Element minimizing [f]; earliest on ties. Raises on empty list. *)

val max_by : ('a -> float) -> 'a list -> 'a
(** Dual of {!min_by}. *)

val sort_by_desc : ('a -> float) -> 'a list -> 'a list
(** Stable sort, descending by key. *)

val group_by : ('a -> 'k) -> 'a list -> ('k * 'a list) list
(** Groups elements by key, preserving first-seen key order and element
    order within each group. Keys compared with structural equality. *)

val pairs : 'a list -> ('a * 'a) list
(** All unordered pairs of distinct positions: [pairs [1;2;3]] is
    [[(1,2); (1,3); (2,3)]]. *)

val unfold : ('s -> ('a * 's) option) -> 's -> 'a list
(** Anamorphism: generates elements until the step function returns
    [None]. *)
