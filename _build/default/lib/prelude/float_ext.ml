let approx ?(eps = 1e-9) a b =
  let d = Float.abs (a -. b) in
  if d <= eps then true
  else d <= eps *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Float_ext.clamp: lo > hi";
  if x < lo then lo else if x > hi then hi else x

let lerp a b t = a +. ((b -. a) *. t)

let is_finite x = Float.is_finite x

(* Kahan summation: keeps a running compensation term for lost low-order
   bits so long experiment aggregations stay accurate. *)
let sum xs =
  let total = ref 0. and comp = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  if Array.length xs = 0 then invalid_arg "Float_ext.mean: empty array";
  sum xs /. float_of_int (Array.length xs)

let round_to digits x =
  let f = 10. ** float_of_int digits in
  Float.round (x *. f) /. f
