(** The paper's virtual-environment generator: "receives as input the
    number of guests and network density and generates an output by
    creating the links between guests and assigning a given amount of
    resources to each one", with a guaranteed-connected topology
    (§5.1). *)

val generate :
  ?scale_to_fit:Hmn_testbed.Cluster.t * float ->
  profile:Workload.profile ->
  n:int ->
  density:float ->
  rng:Hmn_rng.Rng.t ->
  unit ->
  Virtual_env.t
(** [generate ~profile ~n ~density ~rng ()] draws a connected random
    topology on [n] guests with the given edge density, then samples
    every guest demand and virtual-link requirement from [profile].
    Guests are named [vm0 .. vm<n-1>].

    [scale_to_fit (cluster, frac)] applies a feasibility calibration:
    when the aggregate guest memory (resp. storage) exceeds [frac] of
    the cluster's total, every guest's memory (resp. storage) demand is
    scaled down proportionally to hit exactly that utilization. The
    paper's stated uniform ranges put the 10:1 high-level scenario at
    ~96% aggregate memory utilization, where most instances are
    unmappable by {e any} algorithm — contradicting the paper's own
    failure counts (≤ 5 per 480 runs for HMN); its generator is
    described only loosely ("based in a normal distribution"). The
    calibration preserves the distributions' shape and the ratio sweep
    while matching the observed feasibility; see DESIGN.md §3. CPU is
    never scaled (it is not a constraint). *)

val expected_vlinks : n:int -> density:float -> int
(** Number of virtual links the generator will produce. *)

type shape =
  | Random_connected of float
      (** the paper's generator; the payload is the edge density *)
  | Star  (** guest 0 as hub — client/server experiments *)
  | Random_tree  (** hierarchy, e.g. an emulated grid VO *)
  | Barabasi_albert of int
      (** scale-free overlay with [m] links per joining peer — the
          shape of the P2P systems the low-level workload emulates *)
  | Waxman of float * float  (** [(alpha, beta)]: internet-like WAN *)

val generate_shaped :
  ?scale_to_fit:Hmn_testbed.Cluster.t * float ->
  profile:Workload.profile ->
  n:int ->
  shape:shape ->
  rng:Hmn_rng.Rng.t ->
  unit ->
  Virtual_env.t
(** Like {!generate}, with the virtual topology drawn from [shape]
    instead of the density-driven default. All shapes are connected by
    construction. *)
