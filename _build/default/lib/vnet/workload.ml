module Dist = Hmn_rng.Dist

type profile = {
  label : string;
  mips : Dist.t;
  mem_mb : Dist.t;
  stor_gb : Dist.t;
  bandwidth_mbps : Dist.t;
  latency_ms : Dist.t;
}

let high_level =
  {
    label = "high-level";
    mips = Dist.Uniform (50., 100.);
    mem_mb = Dist.Uniform (128., 256.);
    stor_gb = Dist.Uniform (100., 200.);
    bandwidth_mbps = Dist.Uniform (0.5, 1.);
    latency_ms = Dist.Uniform (30., 60.);
  }

let low_level =
  {
    label = "low-level";
    mips = Dist.Uniform (19., 38.);
    mem_mb = Dist.Uniform (19., 38.);
    stor_gb = Dist.Uniform (19., 38.);
    bandwidth_mbps =
      Dist.Uniform (Hmn_prelude.Units.mbps_of_kbps 87., Hmn_prelude.Units.mbps_of_kbps 175.);
    latency_ms = Dist.Uniform (30., 60.);
  }

let draw_demand p rng =
  Hmn_testbed.Resources.make ~mips:(Dist.draw p.mips rng)
    ~mem_mb:(Dist.draw p.mem_mb rng) ~stor_gb:(Dist.draw p.stor_gb rng)

let draw_vlink p rng =
  Vlink.make
    ~bandwidth_mbps:(Dist.draw p.bandwidth_mbps rng)
    ~latency_ms:(Dist.draw p.latency_ms rng)
