(** Workload profiles: the resource and network-requirement
    distributions of the two use cases in the paper's evaluation
    (§5, Table 1). *)

type profile = {
  label : string;
  mips : Hmn_rng.Dist.t;  (** guest CPU demand *)
  mem_mb : Hmn_rng.Dist.t;
  stor_gb : Hmn_rng.Dist.t;
  bandwidth_mbps : Hmn_rng.Dist.t;  (** virtual-link bandwidth *)
  latency_ms : Hmn_rng.Dist.t;  (** virtual-link latency bound *)
}

val high_level : profile
(** "High-level application" testing (grid/cloud middleware): fat
    guests — memory U[128, 256] MB, storage U[100, 200] GB, CPU
    U[50, 100] MIPS; links U[0.5, 1] Mbps with latency bound
    U[30, 60] ms. Used for guest:host ratios up to 10:1. *)

val low_level : profile
(** "Low-level application" testing (e.g. P2P protocols): thin guests —
    memory U[19, 38] MB, storage U[19, 38] GB, CPU U[19, 38] MIPS;
    links U[87, 175] kbps with latency bound U[30, 60] ms. Used for
    ratios 20:1 and above. *)

val draw_demand : profile -> Hmn_rng.Rng.t -> Hmn_testbed.Resources.t
val draw_vlink : profile -> Hmn_rng.Rng.t -> Vlink.t
