(** A guest (virtual machine) of the emulated environment: a name and a
    resource demand vector [vproc/vmem/vstor] (paper §3.2). *)

type t = {
  name : string;
  demand : Hmn_testbed.Resources.t;
}

val make : name:string -> demand:Hmn_testbed.Resources.t -> t
val pp : Format.formatter -> t -> unit
