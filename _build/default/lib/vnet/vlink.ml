type t = {
  bandwidth_mbps : float;
  latency_ms : float;
}

let make ~bandwidth_mbps ~latency_ms =
  if not (bandwidth_mbps > 0.) then invalid_arg "Vlink.make: bandwidth must be positive";
  if latency_ms < 0. then invalid_arg "Vlink.make: negative latency";
  { bandwidth_mbps; latency_ms }

let pp ppf t =
  Format.fprintf ppf "%a (lat<=%.1fms)" Hmn_prelude.Units.pp_bandwidth
    t.bandwidth_mbps t.latency_ms
