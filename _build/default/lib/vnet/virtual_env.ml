module Graph = Hmn_graph.Graph
module Resources = Hmn_testbed.Resources

type t = {
  guests : Guest.t array;
  graph : Vlink.t Graph.t;
}

let create ~guests ~graph =
  if Array.length guests <> Graph.n_nodes graph then
    invalid_arg "Virtual_env.create: guest array / graph size mismatch";
  if Graph.kind graph = Graph.Directed then
    invalid_arg "Virtual_env.create: virtual environments are undirected";
  { guests; graph }

let graph t = t.graph
let n_guests t = Array.length t.guests
let n_vlinks t = Graph.n_edges t.graph

let guest t i =
  if i < 0 || i >= Array.length t.guests then
    invalid_arg "Virtual_env.guest: out of range";
  t.guests.(i)

let demand t i = (guest t i).Guest.demand
let vlink t eid = Graph.label t.graph eid
let endpoints t eid = Graph.endpoints t.graph eid

let total_demand t =
  Array.fold_left (fun acc g -> Resources.add acc g.Guest.demand) Resources.zero t.guests

let guest_degree_bandwidth t i =
  Graph.fold_adj t.graph i ~init:0. ~f:(fun acc ~neighbor:_ ~eid ->
      acc +. (vlink t eid).Vlink.bandwidth_mbps)

let is_connected t = Hmn_graph.Traversal.is_connected t.graph

let pp_summary ppf t =
  Format.fprintf ppf "virtual env: %d guests, %d vlinks; total demand %a"
    (n_guests t) (n_vlinks t) Resources.pp (total_demand t)
