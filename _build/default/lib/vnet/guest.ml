type t = {
  name : string;
  demand : Hmn_testbed.Resources.t;
}

let make ~name ~demand = { name; demand }

let pp ppf t =
  Format.fprintf ppf "guest %s %a" t.name Hmn_testbed.Resources.pp t.demand
