(** A virtual link between two guests: required bandwidth [vbw] and a
    latency bound [vlat] (paper §3.2). The bound is an upper limit on
    the accumulated latency of the physical path the link is mapped
    to (Eq. 8). *)

type t = {
  bandwidth_mbps : float;  (** required bandwidth *)
  latency_ms : float;  (** maximum tolerated path latency *)
}

val make : bandwidth_mbps:float -> latency_ms:float -> t
(** Raises [Invalid_argument] unless bandwidth is positive and latency
    non-negative. *)

val pp : Format.formatter -> t -> unit
