lib/vnet/venv_gen.mli: Hmn_rng Hmn_testbed Virtual_env Workload
