lib/vnet/vlink.mli: Format
