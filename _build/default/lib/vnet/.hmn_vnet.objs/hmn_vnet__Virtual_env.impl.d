lib/vnet/virtual_env.ml: Array Format Guest Hmn_graph Hmn_testbed Vlink
