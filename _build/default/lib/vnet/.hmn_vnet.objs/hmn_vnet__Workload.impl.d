lib/vnet/workload.ml: Hmn_prelude Hmn_rng Hmn_testbed Vlink
