lib/vnet/workload.mli: Hmn_rng Hmn_testbed Vlink
