lib/vnet/vlink.ml: Format Hmn_prelude
