lib/vnet/virtual_env.mli: Format Guest Hmn_graph Hmn_testbed Vlink
