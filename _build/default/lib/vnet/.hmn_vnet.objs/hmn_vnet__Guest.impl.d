lib/vnet/guest.ml: Format Hmn_testbed
