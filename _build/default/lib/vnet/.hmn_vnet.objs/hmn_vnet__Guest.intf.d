lib/vnet/guest.mli: Format Hmn_testbed
