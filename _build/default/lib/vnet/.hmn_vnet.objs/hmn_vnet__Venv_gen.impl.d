lib/vnet/venv_gen.ml: Array Guest Hmn_graph Hmn_testbed Printf Virtual_env Workload
