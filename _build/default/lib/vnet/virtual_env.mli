(** The virtual environment [v = (V, E_v)] (paper §3.2): a set of guests
    and the virtual links between them. *)

type t

val create : guests:Guest.t array -> graph:Vlink.t Hmn_graph.Graph.t -> t
(** Raises [Invalid_argument] when the guest array length differs from
    the graph's node count or the graph is directed (virtual links are
    bidirectional demands in the paper's model). *)

val graph : t -> Vlink.t Hmn_graph.Graph.t
val n_guests : t -> int
val n_vlinks : t -> int
val guest : t -> int -> Guest.t
val demand : t -> int -> Hmn_testbed.Resources.t
val vlink : t -> int -> Vlink.t
(** By edge id. *)

val endpoints : t -> int -> int * int
(** Guests joined by a virtual link. *)

val total_demand : t -> Hmn_testbed.Resources.t

val guest_degree_bandwidth : t -> int -> float
(** Sum of [vbw] over the virtual links incident to a guest; the
    Hosting stage's affinity weight. *)

val is_connected : t -> bool

val pp_summary : Format.formatter -> t -> unit
