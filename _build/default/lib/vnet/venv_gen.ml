module Graph = Hmn_graph.Graph
module Resources = Hmn_testbed.Resources

let expected_vlinks ~n ~density = Hmn_graph.Generators.expected_edges ~n ~density

let rescale_demands guests ~cluster ~frac =
  let total =
    Array.fold_left
      (fun acc g -> Resources.add acc g.Guest.demand)
      Resources.zero guests
  in
  let cap = Hmn_testbed.Cluster.total_capacity cluster in
  let factor demand capacity =
    let target = frac *. capacity in
    if demand > target && demand > 0. then target /. demand else 1.
  in
  let mem_f = factor total.Resources.mem_mb cap.Resources.mem_mb in
  let stor_f = factor total.Resources.stor_gb cap.Resources.stor_gb in
  if mem_f >= 1. && stor_f >= 1. then guests
  else
    Array.map
      (fun g ->
        let d = g.Guest.demand in
        Guest.make ~name:g.Guest.name
          ~demand:
            (Resources.make ~mips:d.Resources.mips
               ~mem_mb:(d.Resources.mem_mb *. mem_f)
               ~stor_gb:(d.Resources.stor_gb *. stor_f)))
      guests

type shape =
  | Random_connected of float
  | Star
  | Random_tree
  | Barabasi_albert of int
  | Waxman of float * float

let build_shape shape ~n ~rng =
  match shape with
  | Random_connected density -> Hmn_graph.Generators.random_connected ~n ~density ~rng
  | Star -> Hmn_graph.Generators.star n
  | Random_tree -> Hmn_graph.Generators.random_tree ~n ~rng
  | Barabasi_albert m -> Hmn_graph.Generators.barabasi_albert ~n ~m ~rng
  | Waxman (alpha, beta) -> Hmn_graph.Generators.waxman ~n ~alpha ~beta ~rng

let from_topology ?scale_to_fit ~profile ~rng topology =
  let n = Graph.n_nodes topology in
  let graph =
    Graph.map_labels topology ~f:(fun ~eid:_ () -> Workload.draw_vlink profile rng)
  in
  let guests =
    Array.init n (fun i ->
        Guest.make
          ~name:(Printf.sprintf "vm%d" i)
          ~demand:(Workload.draw_demand profile rng))
  in
  let guests =
    match scale_to_fit with
    | None -> guests
    | Some (cluster, frac) ->
      if frac <= 0. then invalid_arg "Venv_gen.generate: non-positive fit fraction";
      rescale_demands guests ~cluster ~frac
  in
  Virtual_env.create ~guests ~graph

let generate ?scale_to_fit ~profile ~n ~density ~rng () =
  from_topology ?scale_to_fit ~profile ~rng
    (Hmn_graph.Generators.random_connected ~n ~density ~rng)

let generate_shaped ?scale_to_fit ~profile ~n ~shape ~rng () =
  from_topology ?scale_to_fit ~profile ~rng (build_shape shape ~n ~rng)
