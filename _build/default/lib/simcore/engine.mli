(** Discrete-event simulation engine.

    A minimal, fast kernel in the spirit of what the paper uses
    CloudSim for: a clock and a time-ordered queue of event callbacks.
    Events scheduled for the same instant fire in scheduling order
    (FIFO tie-break), which keeps runs deterministic.

    Cancellation is by invalidation: model code that needs to
    supersede a scheduled event keeps its own epoch counter and has the
    stale callback return without effect (see {!Hmn_emulation} for the
    idiom). *)

type t

val create : unit -> t
(** Fresh engine at time [0.]. *)

val now : t -> float

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Raises [Invalid_argument] when [time] is in the past (before
    [now]). *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule t ~delay f] = [schedule_at t ~time:(now t +. delay) f];
    [delay >= 0.]. *)

val pending : t -> int
(** Events still queued. *)

val processed : t -> int
(** Events executed so far. *)

val step : t -> bool
(** Executes the next event; [false] when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Processes events until the queue empties, the clock passes
    [until], or [max_events] have run this call. The clock advances to
    each event's timestamp as it fires. *)
