lib/simcore/engine.mli:
