lib/simcore/engine.ml: Float Hmn_dstruct Int
