lib/io/codec.ml: Array Fun Hmn_graph Hmn_mapping Hmn_prelude Hmn_routing Hmn_testbed Hmn_vnet List Printf Result
