lib/io/codec.mli: Hmn_mapping Hmn_prelude
