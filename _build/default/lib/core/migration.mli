(** HMN stage 2 — Migration (paper §4.2).

    Greedy load-balancing on top of the Hosting assignment. Each round:

    + pick the most loaded host (smallest residual CPU) that still has
      guests;
    + on it, pick the guest with the smallest total bandwidth to
      co-located guests (moving it off-host strains the network
      least);
    + scan target hosts from least loaded upward and perform the first
      move that strictly improves the load-balance factor (Eq. 10) and
      fits.

    Rounds repeat while a move happened; when no move from the most
    loaded host improves the objective, the stage ends. The LBF is
    strictly decreasing across moves, which bounds the loop; an
    explicit [max_moves] cap (default [16 * guests]) guards against
    floating-point pathologies. *)

type stats = {
  moves : int;  (** migrations performed *)
  lbf_before : float;
  lbf_after : float;
}

val run : ?max_moves:int -> Hmn_mapping.Placement.t -> stats
(** Mutates the placement in place. Never fails: zero moves is a valid
    outcome. *)

val colocated_bandwidth : Hmn_mapping.Placement.t -> guest:int -> float
(** Sum of virtual-link bandwidth from [guest] to guests on the same
    host — the stage's victim-selection key (exposed for tests). *)
