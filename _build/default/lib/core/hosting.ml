module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem

let sorted_vlinks (problem : Problem.t) =
  let venv = problem.Problem.venv in
  let links = Array.init (Virtual_env.n_vlinks venv) Fun.id in
  Hmn_prelude.Array_ext.sort_by_desc
    (fun eid -> (Virtual_env.vlink venv eid).Hmn_vnet.Vlink.bandwidth_mbps)
    links;
  links

let run (problem : Problem.t) =
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let placement = Placement.create problem in
  (* Host list in descending available-CPU order, re-sorted after every
     assignment (hosts are few; the paper re-sorts likewise). *)
  let hosts = Array.copy (Cluster.host_ids cluster) in
  let resort () =
    Hmn_prelude.Array_ext.sort_by_desc
      (fun h -> Placement.residual_cpu placement ~host:h)
      hosts
  in
  resort ();
  let exception Hosting_failed of string in
  let assign guest host =
    match Placement.assign placement ~guest ~host with
    | Ok () -> resort ()
    | Error msg -> raise (Hosting_failed msg)
  in
  let first_fitting ?(from = 0) guest =
    let n = Array.length hosts in
    let rec scan k =
      if k >= n then None
      else begin
        let host = hosts.((from + k) mod n) in
        if Placement.fits placement ~guest ~host then Some ((from + k) mod n)
        else scan (k + 1)
      end
    in
    scan 0
  in
  let assign_first_fitting ?from guest =
    match first_fitting ?from guest with
    | Some idx ->
      let host = hosts.(idx) in
      assign guest host;
      host
    | None ->
      raise
        (Hosting_failed (Printf.sprintf "no host can receive guest %d" guest))
  in
  let both_fit_first_host a b =
    let host = hosts.(0) in
    let d = Resources.add (Virtual_env.demand venv a) (Virtual_env.demand venv b) in
    Cluster.is_host cluster host
    && Resources.fits_mem_stor ~demand:d ~avail:(Placement.residual placement ~host)
  in
  let place_link vs vd =
    match (Placement.host_of placement ~guest:vs, Placement.host_of placement ~guest:vd)
    with
    | Some _, Some _ -> ()
    | None, None ->
      if both_fit_first_host vs vd then begin
        let host = hosts.(0) in
        assign vs host;
        assign vd host
      end
      else begin
        (* Most CPU-intensive guest first. *)
        let cpu g = (Virtual_env.demand venv g).Resources.mips in
        let first, second = if cpu vs >= cpu vd then (vs, vd) else (vd, vs) in
        let idx =
          match first_fitting first with
          | Some idx -> idx
          | None ->
            raise
              (Hosting_failed
                 (Printf.sprintf "no host can receive guest %d" first))
        in
        let host_first = hosts.(idx) in
        assign first host_first;
        (* The sort may have moved hosts; scan for the second guest
           starting just below the first guest's current position. *)
        let pos =
          match Hmn_prelude.Array_ext.find_index_opt (Int.equal host_first) hosts with
          | Some p -> p
          | None -> 0
        in
        ignore (assign_first_fitting ~from:(pos + 1) second)
      end
    | Some host, None | None, Some host ->
      let unplaced = if Placement.is_assigned placement ~guest:vs then vd else vs in
      if Placement.fits placement ~guest:unplaced ~host then assign unplaced host
      else ignore (assign_first_fitting unplaced)
  in
  try
    Array.iter
      (fun eid ->
        let vs, vd = Virtual_env.endpoints venv eid in
        place_link vs vd)
      (sorted_vlinks problem);
    (* Isolated guests (no incident virtual links). *)
    for guest = 0 to Virtual_env.n_guests venv - 1 do
      if not (Placement.is_assigned placement ~guest) then
        ignore (assign_first_fitting guest)
    done;
    Ok placement
  with Hosting_failed reason -> Error (Mapper.fail ~stage:"hosting" ~reason)
