(** Name-indexed registry of every available mapping heuristic — the
    "pool of heuristics that might be selected according to the
    emulated scenario" the paper's conclusion calls for. *)

val all : ?max_tries:int -> unit -> Mapper.t list
(** HMN, R, RA, HS, HN (no-migration ablation), FFD, BFD, WFD, CONS,
    SA (simulated annealing), GA (Liu et al. 2005 genetic baseline).
    [max_tries] configures the retrying baselines. *)

val paper : ?max_tries:int -> unit -> Mapper.t list
(** Exactly the four heuristics of Tables 2–3: HMN, R, RA, HS. *)

val find : ?max_tries:int -> string -> Mapper.t option
(** Case-insensitive lookup by table name. *)

val names : unit -> string list
