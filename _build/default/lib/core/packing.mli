(** Bin-packing placement stages — the paper's future-work "pool of
    heuristics" (§6).

    Each strategy places guests one by one in descending CPU-demand
    order (the classic decreasing variants) and can be combined with
    any routing stage through {!to_mapper}. *)

type strategy =
  | First_fit  (** first host (by id) with room *)
  | Best_fit  (** feasible host with the least residual memory — packs tightly *)
  | Worst_fit  (** feasible host with the most residual CPU — spreads load *)
  | Consolidate
      (** prefer hosts already running guests (first-fit over active
          hosts, opening a new host only when forced) — minimizes the
          number of hosts used, the alternative objective of §6 *)

val strategy_name : strategy -> string

val place :
  strategy ->
  Hmn_mapping.Problem.t ->
  (Hmn_mapping.Placement.t, Mapper.failure) result
(** Places every guest or fails on the first guest that fits nowhere. *)

val to_mapper : strategy -> Mapper.t
(** Placement by the strategy, then the A\*Prune Networking stage.
    Names are ["FFD"], ["BFD"], ["WFD"], ["CONS"]. *)
