(** The three comparison heuristics of the paper's evaluation (§5):

    - {b R} — random placement + depth-first path search; the whole
      mapping (placement and routing) is retried on failure;
    - {b RA} — random placement + the modified A\*Prune Networking
      stage; retried like R;
    - {b HS} — the Hosting stage + depth-first path search; only the
      routing is retried (the paper explains HS's failure count by
      exactly this: a bad initial placement is never revisited).

    The paper caps retries at 100 000; that is the default here, and
    the experiment harness passes a smaller cap (documented in
    EXPERIMENTS.md) to keep the 960-run sweeps tractable. DFS node
    expansions per link are budgeted ({!default_dfs_steps}) because
    proving a link unroutable by exhaustive DFS is exponential; an
    exhausted budget counts as a failed try, which only makes the
    baselines retry — semantics the paper's cap already has. *)

val default_dfs_steps : int

val random : ?max_tries:int -> unit -> Mapper.t
(** ["R"]. *)

val random_aprune : ?max_tries:int -> unit -> Mapper.t
(** ["RA"]. *)

val hosting_search : ?max_tries:int -> unit -> Mapper.t
(** ["HS"]. *)

val dfs_route_all :
  ?rng:Hmn_rng.Rng.t ->
  ?max_steps:int ->
  Hmn_mapping.Placement.t ->
  (Hmn_mapping.Link_map.t, Mapper.failure) result
(** Routes every virtual link of a complete placement with
    (randomized) DFS, in input order, reserving bandwidth as it goes —
    the routing half of R and HS, exposed for tests. *)
