(** The Hosting–Migration–Networking heuristic (paper §4): the three
    stages run in sequence.

    Deterministic: the supplied random source is ignored. *)

type stage_report = {
  hosting_s : float;
  migration_s : float;
  networking_s : float;
  migration_stats : Migration.stats option;  (** [None] when Hosting failed *)
  networking_stats : Networking.stats option;
}

val run : Hmn_mapping.Problem.t -> Mapper.outcome
val run_detailed : Hmn_mapping.Problem.t -> Mapper.outcome * stage_report

val without_migration : Hmn_mapping.Problem.t -> Mapper.outcome
(** Ablation: Hosting directly followed by Networking. Used by the
    benches to quantify what the Migration stage buys. *)

val mapper : Mapper.t
(** ["HMN"]. *)

val mapper_without_migration : Mapper.t
(** ["HN"] — the ablated variant. *)
