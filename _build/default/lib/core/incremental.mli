(** Incremental operations on a live mapping.

    The paper's context is a fully-automated emulation testbed: once an
    environment is deployed, testers reconfigure it — a host is drained
    for maintenance, a hot spot is rebalanced — without tearing down
    every guest. These operations mutate a complete, valid mapping
    while preserving validity: every move re-routes the affected
    virtual links and rolls the whole operation back if any of them
    cannot be re-routed.

    A handle caches the Dijkstra latency tables across operations. *)

type t

val create : Hmn_mapping.Mapping.t -> t
(** Wraps a mapping. The mapping must be complete and valid
    ({!Hmn_mapping.Constraints.check} returns []); raises
    [Invalid_argument] otherwise. The handle owns the mapping: mutating
    it elsewhere voids the guarantees. *)

val mapping : t -> Hmn_mapping.Mapping.t

val move_guest : t -> guest:int -> host:int -> (unit, string) result
(** Migrates one guest and re-routes its inter-host virtual links with
    A\*Prune. On any failure (target does not fit, or some link cannot
    be re-routed) the mapping is restored exactly and an explanation
    returned. *)

val evacuate_host : t -> host:int -> (int, string) result
(** Drains a host for maintenance: moves every resident guest to the
    feasible host currently yielding the best (lowest)
    post-move load-balance factor. Returns the number of guests moved;
    on failure the guests moved so far remain moved (the error names
    the stuck guest). *)

val rebalance : ?max_moves:int -> t -> int
(** The Migration stage on a live mapping: repeatedly moves the
    cheapest-to-move guest off the most loaded host while the
    load-balance factor improves {e and} the move's links can be
    re-routed. Returns the number of moves (default cap: 4 × guests). *)
