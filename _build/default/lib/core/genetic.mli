(** Genetic-algorithm placement, after the related-work baseline of
    Liu et al., "Mapping resources for network emulation with heuristic
    and genetic algorithms" (PDCAT 2005), which the paper cites as the
    closest prior mapping approach.

    A chromosome assigns a host to every guest. Fitness is the negated
    load-balance factor with a large penalty per capacity violation, so
    infeasible individuals are dominated by feasible ones but still
    provide gradient. Tournament selection, uniform crossover,
    random-reassignment mutation, elitism of one. The best feasible
    individual is decoded into a placement and routed with the A\*Prune
    Networking stage. *)

type params = {
  population : int;
  generations : int;
  crossover_rate : float;  (** probability a child is recombined, else cloned *)
  mutation_rate : float;  (** per-gene reassignment probability *)
  tournament : int;  (** tournament size, >= 1 *)
}

val default_params : params
(** population 40, 60 generations, crossover 0.9, mutation 0.02,
    tournament 3. *)

val evolve :
  ?params:params ->
  rng:Hmn_rng.Rng.t ->
  Hmn_mapping.Problem.t ->
  (Hmn_mapping.Placement.t, Mapper.failure) result
(** Runs the GA and decodes the best feasible chromosome; fails when no
    feasible individual was ever produced. *)

val mapper : ?params:params -> unit -> Mapper.t
(** ["GA"]. *)
