lib/core/baselines.ml: Hmn_mapping Hmn_routing Hmn_vnet Hosting Mapper Networking Option Printf Random_place Unix
