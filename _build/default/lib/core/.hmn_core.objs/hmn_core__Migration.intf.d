lib/core/migration.mli: Hmn_mapping
