lib/core/packing.ml: Array Fun Hmn_mapping Hmn_prelude Hmn_testbed Hmn_vnet List Mapper Networking Printf
