lib/core/migration.ml: Array Hmn_graph Hmn_mapping Hmn_prelude Hmn_testbed Hmn_vnet List Option
