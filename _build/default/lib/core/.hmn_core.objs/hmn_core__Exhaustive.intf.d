lib/core/exhaustive.mli: Hmn_mapping Mapper
