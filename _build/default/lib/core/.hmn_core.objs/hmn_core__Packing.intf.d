lib/core/packing.mli: Hmn_mapping Mapper
