lib/core/random_place.mli: Hmn_mapping Hmn_rng Mapper
