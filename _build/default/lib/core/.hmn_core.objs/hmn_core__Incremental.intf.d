lib/core/incremental.mli: Hmn_mapping
