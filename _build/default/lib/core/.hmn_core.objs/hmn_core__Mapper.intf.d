lib/core/mapper.mli: Format Hmn_mapping Hmn_rng
