lib/core/baselines.mli: Hmn_mapping Hmn_rng Mapper
