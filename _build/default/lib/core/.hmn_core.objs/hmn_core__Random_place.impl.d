lib/core/random_place.ml: Array Fun Hmn_mapping Hmn_rng Hmn_testbed Hmn_vnet List Mapper Printf
