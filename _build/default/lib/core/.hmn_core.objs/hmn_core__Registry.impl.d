lib/core/registry.ml: Annealing Baselines Genetic Hmn List Mapper Packing String
