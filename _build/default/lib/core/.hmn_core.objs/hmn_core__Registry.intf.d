lib/core/registry.mli: Mapper
