lib/core/hosting.mli: Hmn_mapping Mapper
