lib/core/hmn.ml: Hmn_mapping Hosting Mapper Migration Networking
