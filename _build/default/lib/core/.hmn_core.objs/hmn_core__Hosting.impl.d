lib/core/hosting.ml: Array Fun Hmn_mapping Hmn_prelude Hmn_testbed Hmn_vnet Int Mapper Printf
