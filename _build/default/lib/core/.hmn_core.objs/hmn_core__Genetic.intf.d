lib/core/genetic.mli: Hmn_mapping Hmn_rng Mapper
