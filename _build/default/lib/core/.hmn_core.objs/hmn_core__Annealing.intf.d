lib/core/annealing.mli: Hmn_mapping Hmn_rng Mapper
