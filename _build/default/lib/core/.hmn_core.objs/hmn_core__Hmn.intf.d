lib/core/hmn.mli: Hmn_mapping Mapper Migration Networking
