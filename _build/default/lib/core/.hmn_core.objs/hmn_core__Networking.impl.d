lib/core/networking.ml: Array Hmn_mapping Hmn_routing Hmn_vnet Hosting Mapper Option Printf
