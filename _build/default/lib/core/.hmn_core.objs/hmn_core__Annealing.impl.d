lib/core/annealing.ml: Array Hmn_mapping Hmn_rng Hmn_testbed Hmn_vnet Hosting Mapper Networking
