lib/core/exhaustive.ml: Array Hmn_mapping Hmn_testbed Hmn_vnet Mapper Networking Printf
