lib/core/incremental.ml: Array Float Format Hmn_graph Hmn_mapping Hmn_prelude Hmn_routing Hmn_testbed Hmn_vnet List Migration Option Printf
