lib/core/mapper.ml: Format Hmn_mapping Hmn_rng Unix
