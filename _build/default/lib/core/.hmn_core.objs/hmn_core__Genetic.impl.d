lib/core/genetic.ml: Array Hmn_mapping Hmn_rng Hmn_stats Hmn_testbed Hmn_vnet Hosting Mapper Networking
