lib/core/networking.mli: Hmn_mapping Hmn_routing Mapper
