(** Random guest placement — the placement half of the R and RA
    baselines.

    Guests are visited in a shuffled order; each is assigned to a host
    drawn uniformly among the hosts it currently fits on. One call is
    one "try" in the paper's sense; the caller retries with fresh
    randomness. *)

val run :
  rng:Hmn_rng.Rng.t ->
  Hmn_mapping.Problem.t ->
  (Hmn_mapping.Placement.t, Mapper.failure) result
(** Fails when some guest fits on no host at the moment it is drawn
    (fragmentation can make this happen even when smarter orders would
    succeed — that weakness is the point of the baseline). *)
