(** Simulated-annealing placement — one of the "pool of heuristics" the
    paper's conclusion proposes for scenarios where HMN's greedy
    migration stalls in a local optimum.

    The state is a complete placement; a move re-assigns one random
    guest to a random feasible host; the energy is the load-balance
    factor (Eq. 10). Moves are accepted by the Metropolis criterion
    under a geometric cooling schedule. Routing is the standard
    A\*Prune Networking stage on the final placement. *)

type params = {
  iterations : int;  (** total proposed moves *)
  initial_temperature : float;  (** in LBF (MIPS) units *)
  cooling : float;  (** multiplicative factor per iteration, in (0, 1) *)
}

val default_params : params
(** 2000 iterations, T0 = 200 MIPS, cooling 0.998. *)

val anneal :
  ?params:params ->
  rng:Hmn_rng.Rng.t ->
  Hmn_mapping.Placement.t ->
  int
(** Anneals the given (complete) placement in place; returns the number
    of accepted moves. The placement can only end at an equal or better
    LBF than the best state seen — the best state is restored at the
    end. *)

val mapper : ?params:params -> unit -> Mapper.t
(** ["SA"]: Hosting for the initial state, annealing, then Networking. *)
