let paper ?max_tries () =
  [
    Hmn.mapper;
    Baselines.random ?max_tries ();
    Baselines.random_aprune ?max_tries ();
    Baselines.hosting_search ?max_tries ();
  ]

let all ?max_tries () =
  paper ?max_tries ()
  @ [
      Hmn.mapper_without_migration;
      Packing.to_mapper Packing.First_fit;
      Packing.to_mapper Packing.Best_fit;
      Packing.to_mapper Packing.Worst_fit;
      Packing.to_mapper Packing.Consolidate;
      Annealing.mapper ();
      Genetic.mapper ();
    ]

let find ?max_tries name =
  let target = String.lowercase_ascii name in
  List.find_opt
    (fun m -> String.lowercase_ascii m.Mapper.name = target)
    (all ?max_tries ())

let names () = List.map (fun m -> m.Mapper.name) (all ())
