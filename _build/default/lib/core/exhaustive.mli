(** Exhaustive optimal placement — a reference "OPT" for tiny
    instances.

    Enumerates every assignment of guests to hosts, keeps the feasible
    ones (Eqs. 1–3), and returns one minimizing the load-balance
    factor; links are then routed with the A\*Prune Networking stage
    in the usual order. Exponential ([hosts^guests] states, with
    memory/storage pruning), so it is gated on instance size — its
    purpose is to ground the heuristics in tests and benches, not to
    map real environments. *)

val max_states : int
(** Enumeration budget: [hosts^guests] must not exceed this
    (1_000_000). *)

val optimal_placement :
  Hmn_mapping.Problem.t -> (Hmn_mapping.Placement.t * float, Mapper.failure) result
(** Best placement and its LBF. Fails when the instance is too large
    for the budget or no feasible placement exists. Deterministic:
    ties resolve to the lexicographically first assignment. *)

val mapper : Mapper.t
(** ["OPT"]. Not registered in {!Registry.all} (it only works on toy
    instances); exposed for tests, examples and ablations. *)
