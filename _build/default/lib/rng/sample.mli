(** Sampling utilities over collections. *)

val shuffle : Rng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffled_copy : Rng.t -> 'a array -> 'a array
(** Fresh shuffled copy; the input is untouched. *)

val choice : Rng.t -> 'a array -> 'a
(** Uniform element. Raises [Invalid_argument] on an empty array. *)

val choose_k : Rng.t -> int -> 'a array -> 'a array
(** [choose_k rng k xs] draws [k] distinct elements uniformly (partial
    Fisher–Yates). Raises if [k < 0] or [k > Array.length xs]. *)

val weighted_index : Rng.t -> float array -> int
(** Index drawn proportionally to the (non-negative) weights. Raises if
    weights are empty, negative, or all zero. *)
