(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    A tiny, fast, well-distributed 64-bit generator. We use it for two
    purposes: seeding {!Xoshiro256ss} state from a single user seed, and
    deriving independent child seeds for split streams. *)

type t

val create : int64 -> t
(** [create seed] builds a generator from any 64-bit seed (including 0). *)

val next : t -> int64
(** Next 64-bit output; advances the state. *)

val next_in : t -> bound:int -> int
(** [next_in t ~bound] is a uniform integer in [[0, bound)]. Raises
    [Invalid_argument] if [bound <= 0]. *)
