lib/rng/xoshiro256ss.mli:
