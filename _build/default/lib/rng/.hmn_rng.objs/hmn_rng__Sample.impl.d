lib/rng/sample.ml: Array Hmn_prelude Rng
