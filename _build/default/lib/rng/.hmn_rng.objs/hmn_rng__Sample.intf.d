lib/rng/sample.mli: Rng
