lib/rng/rng.mli:
