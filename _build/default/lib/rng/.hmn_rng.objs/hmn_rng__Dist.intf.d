lib/rng/dist.mli: Format Rng
