lib/rng/dist.ml: Float Format Hmn_prelude Rng
