lib/rng/rng.ml: Int64 Xoshiro256ss
