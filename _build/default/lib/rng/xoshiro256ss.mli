(** xoshiro256** 1.0 (Blackman & Vigna 2018).

    The project's workhorse generator: 256-bit state, period 2^256 − 1,
    excellent statistical quality, and cheap jumps. State is seeded from
    SplitMix64 as the authors recommend. *)

type t

val create : int64 -> t
(** [create seed] seeds the 256-bit state from [seed] via SplitMix64. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int64
(** Next 64-bit output. *)

val next_float : t -> float
(** Uniform float in [[0, 1)], using the top 53 bits. *)

val next_int : t -> bound:int -> int
(** Uniform integer in [[0, bound)] by rejection sampling (unbiased).
    Raises [Invalid_argument] if [bound <= 0]. *)

val jump : t -> unit
(** Advances the state by 2^128 steps: partitions the sequence into
    non-overlapping substreams. *)
