(** Probability distributions over a {!Rng.t} source.

    The paper's instance generator draws host and guest resources from
    uniform ranges (Table 1) and mentions normally-distributed resource
    counts; both are provided, plus exponential for the simulator's
    optional arrival models. *)

type t =
  | Uniform of float * float  (** [Uniform (lo, hi)]: uniform on [[lo, hi)] *)
  | Normal of float * float
      (** [Normal (mu, sigma)]: Gaussian via Box–Muller; [sigma >= 0] *)
  | Truncated_normal of float * float * float * float
      (** [Truncated_normal (mu, sigma, lo, hi)]: Gaussian resampled until
          it lands in [[lo, hi]] *)
  | Exponential of float  (** [Exponential rate]: mean [1 /. rate] *)
  | Constant of float

val draw : t -> Rng.t -> float
(** Samples one value. Raises [Invalid_argument] on malformed parameters
    (e.g. negative sigma, non-positive rate, [lo > hi]). *)

val mean : t -> float
(** Analytic mean of the distribution (truncated normal approximated by
    its untruncated mean clamped to the bounds). *)

val pp : Format.formatter -> t -> unit
