let shuffle rng xs =
  for i = Array.length xs - 1 downto 1 do
    let j = Rng.int rng ~bound:(i + 1) in
    Hmn_prelude.Array_ext.swap xs i j
  done

let shuffled_copy rng xs =
  let copy = Array.copy xs in
  shuffle rng copy;
  copy

let choice rng xs =
  if Array.length xs = 0 then invalid_arg "Sample.choice: empty array";
  xs.(Rng.int rng ~bound:(Array.length xs))

let choose_k rng k xs =
  let n = Array.length xs in
  if k < 0 || k > n then invalid_arg "Sample.choose_k: bad k";
  let pool = Array.copy xs in
  for i = 0 to k - 1 do
    let j = i + Rng.int rng ~bound:(n - i) in
    Hmn_prelude.Array_ext.swap pool i j
  done;
  Array.sub pool 0 k

let weighted_index rng weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sample.weighted_index: empty weights";
  Array.iter
    (fun w -> if w < 0. then invalid_arg "Sample.weighted_index: negative weight")
    weights;
  let total = Hmn_prelude.Float_ext.sum weights in
  if total <= 0. then invalid_arg "Sample.weighted_index: all-zero weights";
  let target = Rng.float rng *. total in
  let acc = ref 0. and found = ref (n - 1) and i = ref 0 in
  (try
     while !i < n do
       acc := !acc +. weights.(!i);
       if target < !acc then begin
         found := !i;
         raise Exit
       end;
       incr i
     done
   with Exit -> ());
  !found
