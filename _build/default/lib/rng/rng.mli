(** The project-wide random source.

    Every stochastic component (instance generators, random mappers,
    experiment repetitions) draws from a value of this type, created from
    an explicit integer seed, so all results are reproducible and
    independent streams can be split off for parallel or per-repetition
    use without correlation. *)

type t

val create : int -> t
(** [create seed] builds a generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives a child generator whose stream is statistically
    independent of the parent's subsequent output. The parent advances. *)

val int : t -> bound:int -> int
(** Uniform integer in [[0, bound)]. Raises if [bound <= 0]. *)

val float : t -> float
(** Uniform float in [[0, 1)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [[lo, hi]]. Raises if
    [lo > hi]. *)

val float_in : t -> lo:float -> hi:float -> float
(** Uniform float in [[lo, hi)]. Raises if [lo > hi]. *)
