type t =
  | Uniform of float * float
  | Normal of float * float
  | Truncated_normal of float * float * float * float
  | Exponential of float
  | Constant of float

let box_muller rng mu sigma =
  (* Avoid log 0 by shifting the first uniform away from zero. *)
  let u1 = 1. -. Rng.float rng in
  let u2 = Rng.float rng in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let rec draw d rng =
  match d with
  | Uniform (lo, hi) -> Rng.float_in rng ~lo ~hi
  | Normal (mu, sigma) ->
    if sigma < 0. then invalid_arg "Dist.draw: negative sigma";
    box_muller rng mu sigma
  | Truncated_normal (mu, sigma, lo, hi) ->
    if lo > hi then invalid_arg "Dist.draw: lo > hi";
    if sigma < 0. then invalid_arg "Dist.draw: negative sigma";
    let x = box_muller rng mu sigma in
    if x >= lo && x <= hi then x else draw d rng
  | Exponential rate ->
    if rate <= 0. then invalid_arg "Dist.draw: non-positive rate";
    -.log (1. -. Rng.float rng) /. rate
  | Constant c -> c

let mean = function
  | Uniform (lo, hi) -> (lo +. hi) /. 2.
  | Normal (mu, _) -> mu
  | Truncated_normal (mu, _, lo, hi) -> Hmn_prelude.Float_ext.clamp ~lo ~hi mu
  | Exponential rate -> 1. /. rate
  | Constant c -> c

let pp ppf = function
  | Uniform (lo, hi) -> Format.fprintf ppf "U[%g,%g)" lo hi
  | Normal (mu, sigma) -> Format.fprintf ppf "N(%g,%g)" mu sigma
  | Truncated_normal (mu, sigma, lo, hi) ->
    Format.fprintf ppf "N(%g,%g)|[%g,%g]" mu sigma lo hi
  | Exponential rate -> Format.fprintf ppf "Exp(%g)" rate
  | Constant c -> Format.fprintf ppf "Const(%g)" c
