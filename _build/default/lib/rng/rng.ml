type t = Xoshiro256ss.t

let create seed = Xoshiro256ss.create (Int64.of_int seed)

let split t =
  (* Seed the child from the parent's output, then decorrelate the child
     with a 2^128 jump so parent and child never share a window. *)
  let child = Xoshiro256ss.create (Xoshiro256ss.next t) in
  Xoshiro256ss.jump child;
  child

let int t ~bound = Xoshiro256ss.next_int t ~bound
let float t = Xoshiro256ss.next_float t
let bool t = Int64.logand (Xoshiro256ss.next t) 1L = 1L

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t ~bound:(hi - lo + 1)

let float_in t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.float_in: lo > hi";
  lo +. (float t *. (hi -. lo))
