type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_in t ~bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_in: bound <= 0";
  (* Take the high bits (better distributed) modulo bound; bias is
     negligible for the bounds used in this project (< 2^31). *)
  let x = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem x (Int64.of_int bound))
