(** Indexed binary min-heap over the keys [0 .. n-1] with float
    priorities and decrease-key.

    This is the priority queue that backs Dijkstra: each node id appears
    at most once, its priority can be lowered in O(log n), and membership
    is O(1). *)

type t

val create : int -> t
(** [create n] supports keys [0 .. n-1]; initially empty. Raises
    [Invalid_argument] if [n < 0]. *)

val length : t -> int
val is_empty : t -> bool

val mem : t -> int -> bool
(** Is the key currently queued? *)

val priority : t -> int -> float option
(** Current priority of a queued key. *)

val insert : t -> int -> float -> unit
(** Adds a key. Raises [Invalid_argument] if the key is out of range or
    already present. *)

val decrease : t -> int -> float -> unit
(** Lowers a queued key's priority. Raises [Invalid_argument] if the key
    is absent or the new priority is higher than the current one. *)

val insert_or_decrease : t -> int -> float -> unit
(** Inserts the key, or lowers its priority if the new one is smaller;
    a no-op when the key is queued with a priority that is already as
    low. *)

val pop_min : t -> (int * float) option
(** Removes and returns the (key, priority) pair with the smallest
    priority. *)
