type t = { words : Bytes.t; n : int; mutable card : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((n + 7) / 8) '\000'; n; card = 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: element out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = i lsr 3 and bit = 1 lsl (i land 7) in
  let v = Char.code (Bytes.get t.words byte) in
  if v land bit = 0 then begin
    Bytes.set t.words byte (Char.chr (v lor bit));
    t.card <- t.card + 1
  end

let remove t i =
  check t i;
  let byte = i lsr 3 and bit = 1 lsl (i land 7) in
  let v = Char.code (Bytes.get t.words byte) in
  if v land bit <> 0 then begin
    Bytes.set t.words byte (Char.chr (v land lnot bit));
    t.card <- t.card - 1
  end

let cardinal t = t.card

let copy t = { words = Bytes.copy t.words; n = t.n; card = t.card }

let clear t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\000';
  t.card <- 0

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
