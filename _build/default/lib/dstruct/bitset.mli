(** Fixed-capacity bitset over [0 .. n-1].

    Used for visited-sets in traversals and for the "host already on this
    path" membership test in A\*Prune, where it beats hashing. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val capacity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val cardinal : t -> int

val copy : t -> t
(** Independent copy (paths branching in A\*Prune clone their member
    set). *)

val clear : t -> unit
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
