(** Array-backed binary min-heap over an arbitrary ordering.

    Used as the frontier of Dijkstra / A\*Prune and as the event queue of
    the simulation kernel. All operations are the classic O(log n) /
    O(1). *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] builds an empty heap; the minimum is the element
    smallest under [cmp]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: elements in ascending order. O(n log n). *)
