(** Persistent pairing heap (min-heap).

    A purely functional alternative to {!Binary_heap}; A\*Prune keeps its
    open set in one of these in the reference implementation style, and
    having a persistent variant makes property-testing the imperative
    heaps easy (they are cross-checked against this one). *)

type 'a t

val empty : cmp:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
(** O(1): the size is cached. *)

val insert : 'a t -> 'a -> 'a t
val find_min : 'a t -> 'a option

val delete_min : 'a t -> ('a * 'a t) option
(** Removes the minimum; amortized O(log n). *)

val merge : 'a t -> 'a t -> 'a t
(** Melds two heaps built with the same comparison function. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
