lib/dstruct/binary_heap.mli:
