lib/dstruct/union_find.mli:
