lib/dstruct/indexed_heap.ml: Array
