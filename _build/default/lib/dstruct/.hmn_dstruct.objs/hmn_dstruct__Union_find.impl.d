lib/dstruct/union_find.ml: Array
