lib/dstruct/dynarray.ml: Array
