lib/dstruct/dynarray.mli:
