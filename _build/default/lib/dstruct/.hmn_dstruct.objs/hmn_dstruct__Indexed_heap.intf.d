lib/dstruct/indexed_heap.mli:
