lib/dstruct/bitset.mli:
