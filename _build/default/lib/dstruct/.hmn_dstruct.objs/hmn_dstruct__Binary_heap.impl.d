lib/dstruct/binary_heap.ml: Array Hmn_prelude List
