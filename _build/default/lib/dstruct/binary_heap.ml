type 'a t = {
  cmp : 'a -> 'a -> int;
  initial_capacity : int;
  mutable data : 'a array;  (* empty until the first push; slots >= size hold a filler *)
  mutable size : int;
}

let create ?(capacity = 16) ~cmp () =
  { cmp; initial_capacity = max capacity 1; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let ensure_room t filler =
  if Array.length t.data = 0 then t.data <- Array.make t.initial_capacity filler
  else if t.size = Array.length t.data then begin
    let data = Array.make (2 * Array.length t.data) filler in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      Hmn_prelude.Array_ext.swap t.data i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    Hmn_prelude.Array_ext.swap t.data i !smallest;
    sift_down t !smallest
  end

let push t x =
  ensure_room t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    (* Overwrite the vacated slot with a live value so no stale element
       is retained by the GC. *)
    t.data.(t.size) <- (if t.size > 0 then t.data.(0) else top);
    if t.size > 0 then sift_down t 0;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Binary_heap.pop_exn: empty heap"

let clear t =
  t.data <- [||];
  t.size <- 0

let to_sorted_list t =
  let copy = { t with data = Array.copy t.data } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
