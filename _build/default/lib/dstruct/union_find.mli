(** Disjoint-set forest with union by rank and path compression.

    Used by the random-graph generators to track connectivity while
    sprinkling extra edges, and by connectivity checks. *)

type t

val create : int -> t
(** [create n] builds [n] singleton sets over elements [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative; compresses paths. Raises
    [Invalid_argument] on out-of-range elements. *)

val union : t -> int -> int -> bool
(** Merges the sets of the two elements. Returns [true] when they were
    previously in different sets. *)

val same : t -> int -> int -> bool
(** Do the two elements share a set? *)

val count : t -> int
(** Number of disjoint sets currently represented. *)
