type t = {
  keys : int array;        (* heap array of keys *)
  pos : int array;         (* pos.(key) = index in [keys], or -1 *)
  prio : float array;      (* prio.(key) = current priority *)
  mutable size : int;
}

let create n =
  if n < 0 then invalid_arg "Indexed_heap.create: negative capacity";
  { keys = Array.make (max n 1) 0; pos = Array.make (max n 1) (-1); prio = Array.make (max n 1) 0.; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let in_range t k = k >= 0 && k < Array.length t.pos
let mem t k = in_range t k && t.pos.(k) >= 0

let priority t k = if mem t k then Some t.prio.(k) else None

let swap t i j =
  let ki = t.keys.(i) and kj = t.keys.(j) in
  t.keys.(i) <- kj;
  t.keys.(j) <- ki;
  t.pos.(kj) <- i;
  t.pos.(ki) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(t.keys.(i)) < t.prio.(t.keys.(parent)) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.prio.(t.keys.(l)) < t.prio.(t.keys.(!smallest)) then smallest := l;
  if r < t.size && t.prio.(t.keys.(r)) < t.prio.(t.keys.(!smallest)) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let insert t k p =
  if not (in_range t k) then invalid_arg "Indexed_heap.insert: key out of range";
  if t.pos.(k) >= 0 then invalid_arg "Indexed_heap.insert: key already present";
  t.keys.(t.size) <- k;
  t.pos.(k) <- t.size;
  t.prio.(k) <- p;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let decrease t k p =
  if not (mem t k) then invalid_arg "Indexed_heap.decrease: key absent";
  if p > t.prio.(k) then invalid_arg "Indexed_heap.decrease: priority increase";
  t.prio.(k) <- p;
  sift_up t t.pos.(k)

let insert_or_decrease t k p =
  if mem t k then begin
    if p < t.prio.(k) then decrease t k p
  end
  else insert t k p

let pop_min t =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) in
    let p = t.prio.(k) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.pos.(t.keys.(0)) <- 0
    end;
    t.pos.(k) <- -1;
    if t.size > 0 then sift_down t 0;
    Some (k, p)
  end
