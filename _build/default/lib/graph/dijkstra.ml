type result = {
  dist : float array;
  prev_node : int array;
  prev_edge : int array;
}

let run g ~weight ~src =
  let n = Graph.n_nodes g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.run: source out of range";
  let dist = Array.make n infinity in
  let prev_node = Array.make n (-1) in
  let prev_edge = Array.make n (-1) in
  let heap = Hmn_dstruct.Indexed_heap.create n in
  dist.(src) <- 0.;
  Hmn_dstruct.Indexed_heap.insert heap src 0.;
  let rec loop () =
    match Hmn_dstruct.Indexed_heap.pop_min heap with
    | None -> ()
    | Some (u, du) ->
      Graph.iter_adj g u (fun ~neighbor ~eid ->
          let w = weight eid in
          if w < 0. then invalid_arg "Dijkstra.run: negative weight";
          let alt = du +. w in
          if alt < dist.(neighbor) then begin
            dist.(neighbor) <- alt;
            prev_node.(neighbor) <- u;
            prev_edge.(neighbor) <- eid;
            Hmn_dstruct.Indexed_heap.insert_or_decrease heap neighbor alt
          end);
      loop ()
  in
  loop ();
  { dist; prev_node; prev_edge }

let distances_to g ~weight ~dst =
  match Graph.kind g with
  | Graph.Undirected -> (run g ~weight ~src:dst).dist
  | Graph.Directed ->
    (* Run Dijkstra on the reversed adjacency. *)
    let n = Graph.n_nodes g in
    let rev = Array.make n [] in
    Graph.iter_edges g (fun ~eid ~u ~v _ -> rev.(v) <- (u, eid) :: rev.(v));
    let dist = Array.make n infinity in
    let heap = Hmn_dstruct.Indexed_heap.create n in
    dist.(dst) <- 0.;
    Hmn_dstruct.Indexed_heap.insert heap dst 0.;
    let rec loop () =
      match Hmn_dstruct.Indexed_heap.pop_min heap with
      | None -> ()
      | Some (u, du) ->
        List.iter
          (fun (p, eid) ->
            let w = weight eid in
            if w < 0. then invalid_arg "Dijkstra.distances_to: negative weight";
            let alt = du +. w in
            if alt < dist.(p) then begin
              dist.(p) <- alt;
              Hmn_dstruct.Indexed_heap.insert_or_decrease heap p alt
            end)
          rev.(u);
        loop ()
    in
    loop ();
    dist

let path_to res v =
  if res.dist.(v) = infinity then None
  else begin
    let rec build v nodes edges =
      if res.prev_node.(v) = -1 then (v :: nodes, edges)
      else build res.prev_node.(v) (v :: nodes) (res.prev_edge.(v) :: edges)
    in
    Some (build v [] [])
  end
