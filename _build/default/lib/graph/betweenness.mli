(** Edge betweenness centrality (Brandes 2001).

    The fraction of all-pairs shortest paths crossing each edge — the
    standard predictor of which physical links a topology will
    congest. Used by the mapping reports to flag structurally hot
    links (e.g. a cascade's inter-switch cables) independently of any
    particular workload. *)

val edges :
  ?weight:(int -> float) -> 'e Graph.t -> float array
(** [edges g] returns, indexed by edge id, the betweenness of every
    edge: the sum over ordered node pairs [(s, t)] of the fraction of
    shortest [s]–[t] paths using the edge. Unweighted (hop-count)
    shortest paths by default; [weight] supplies positive edge
    weights. For undirected graphs each unordered pair is counted
    twice (both orders), the usual convention. Raises
    [Invalid_argument] on non-positive weights. *)

val nodes : ?weight:(int -> float) -> 'e Graph.t -> float array
(** Node betweenness (excluding endpoints), same conventions. *)
