module Dynarray = Hmn_dstruct.Dynarray

type kind = Directed | Undirected

type 'e t = {
  kind : kind;
  n : int;
  (* adjacency.(u) holds (neighbor, edge id) pairs *)
  adjacency : (int * int) Dynarray.t array;
  sources : int Dynarray.t;
  targets : int Dynarray.t;
  labels : 'e Dynarray.t;
}

let create ?(kind = Undirected) ~n () =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  {
    kind;
    n;
    adjacency = Array.init n (fun _ -> Dynarray.create ());
    sources = Dynarray.create ();
    targets = Dynarray.create ();
    labels = Dynarray.create ();
  }

let kind g = g.kind
let n_nodes g = g.n
let n_edges g = Dynarray.length g.labels

let check_node g u name =
  if u < 0 || u >= g.n then invalid_arg ("Graph." ^ name ^ ": node out of range")

let add_edge g u v lab =
  check_node g u "add_edge";
  check_node g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  let eid = n_edges g in
  Dynarray.push g.sources u;
  Dynarray.push g.targets v;
  Dynarray.push g.labels lab;
  Dynarray.push g.adjacency.(u) (v, eid);
  if g.kind = Undirected then Dynarray.push g.adjacency.(v) (u, eid);
  eid

let check_edge g eid name =
  if eid < 0 || eid >= n_edges g then
    invalid_arg ("Graph." ^ name ^ ": edge out of range")

let endpoints g eid =
  check_edge g eid "endpoints";
  (Dynarray.get g.sources eid, Dynarray.get g.targets eid)

let label g eid =
  check_edge g eid "label";
  Dynarray.get g.labels eid

let set_label g eid lab =
  check_edge g eid "set_label";
  Dynarray.set g.labels eid lab

let other_end g eid u =
  let s, t = endpoints g eid in
  if u = s then t
  else if u = t then s
  else invalid_arg "Graph.other_end: node not an endpoint"

let iter_adj g u f =
  check_node g u "iter_adj";
  Dynarray.iter (fun (neighbor, eid) -> f ~neighbor ~eid) g.adjacency.(u)

let fold_adj g u ~init ~f =
  check_node g u "fold_adj";
  Dynarray.fold_left (fun acc (neighbor, eid) -> f acc ~neighbor ~eid) init g.adjacency.(u)

let adj_list g u =
  List.rev (fold_adj g u ~init:[] ~f:(fun acc ~neighbor ~eid -> (neighbor, eid) :: acc))

let find_edge g u v =
  check_node g u "find_edge";
  check_node g v "find_edge";
  let found = ref None in
  (try
     iter_adj g u (fun ~neighbor ~eid ->
         if neighbor = v then begin
           found := Some eid;
           raise Exit
         end)
   with Exit -> ());
  !found

let degree g u =
  check_node g u "degree";
  Dynarray.length g.adjacency.(u)

let iter_edges g f =
  for eid = 0 to n_edges g - 1 do
    f ~eid ~u:(Dynarray.get g.sources eid) ~v:(Dynarray.get g.targets eid)
      (Dynarray.get g.labels eid)
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun ~eid ~u ~v lab -> acc := f !acc ~eid ~u ~v lab);
  !acc

let map_labels g ~f =
  let g' = create ~kind:g.kind ~n:g.n () in
  iter_edges g (fun ~eid ~u ~v lab -> ignore (add_edge g' u v (f ~eid lab)));
  g'

let copy g = map_labels g ~f:(fun ~eid:_ lab -> lab)
