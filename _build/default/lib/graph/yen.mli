(** Yen's algorithm: K shortest loopless paths (Yen 1971).

    The classical alternative to A\*Prune for K-shortest-path problems;
    kept both as a useful general algorithm and as an independent
    oracle for {!Astar_prune_k} in the test suite (the two must agree
    on unconstrained instances). *)

type path = {
  nodes : int list;  (** [src ... dst] *)
  edges : int list;
  cost : float;
}

val k_shortest :
  'e Graph.t -> k:int -> cost:(int -> float) -> src:int -> dst:int -> path list
(** Up to [k] loopless paths in non-decreasing cost order. Ties are
    broken deterministically (lexicographically by node sequence).
    Raises [Invalid_argument] on out-of-range endpoints, [k <= 0], or
    negative costs. [src = dst] yields the single empty path. *)
