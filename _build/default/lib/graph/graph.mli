(** Compact mutable graphs with integer nodes and labelled edges.

    Nodes are the integers [0 .. n_nodes - 1]; node payloads live in
    caller-side arrays indexed by node id. Edges carry a polymorphic
    label and are identified by a dense integer id in insertion order,
    which lets algorithms attach per-edge state in flat arrays.

    Graphs are undirected by default (each edge appears in both
    endpoints' adjacency); a directed variant is available for
    completeness. Parallel edges are permitted; self-loops are rejected
    because neither the physical cluster nor the virtual environment of
    the paper has them. *)

type kind = Directed | Undirected

type 'e t

val create : ?kind:kind -> n:int -> unit -> 'e t
(** [create ~n ()] is an edgeless graph on [n] nodes (default
    {!Undirected}). Raises [Invalid_argument] if [n < 0]. *)

val kind : 'e t -> kind
val n_nodes : 'e t -> int
val n_edges : 'e t -> int

val add_edge : 'e t -> int -> int -> 'e -> int
(** [add_edge g u v label] inserts an edge and returns its id. Raises
    [Invalid_argument] on out-of-range endpoints or [u = v]. *)

val endpoints : 'e t -> int -> int * int
(** [(u, v)] as given at insertion. Raises on a bad edge id. *)

val label : 'e t -> int -> 'e
val set_label : 'e t -> int -> 'e -> unit

val other_end : 'e t -> int -> int -> int
(** [other_end g eid u] is the endpoint of [eid] that is not [u]. Raises
    [Invalid_argument] when [u] is not an endpoint. *)

val find_edge : 'e t -> int -> int -> int option
(** An edge id joining the two nodes if one exists ([u]→[v] only, for
    directed graphs). O(min degree). *)

val degree : 'e t -> int -> int
(** Out-degree for directed graphs; incident-edge count otherwise. *)

val iter_adj : 'e t -> int -> (neighbor:int -> eid:int -> unit) -> unit
(** Iterates the adjacency of a node: for undirected graphs every
    incident edge, for directed graphs outgoing edges only. *)

val fold_adj : 'e t -> int -> init:'a -> f:('a -> neighbor:int -> eid:int -> 'a) -> 'a

val adj_list : 'e t -> int -> (int * int) list
(** [(neighbor, eid)] pairs of a node's adjacency. *)

val iter_edges : 'e t -> (eid:int -> u:int -> v:int -> 'e -> unit) -> unit

val fold_edges : 'e t -> init:'a -> f:('a -> eid:int -> u:int -> v:int -> 'e -> 'a) -> 'a

val map_labels : 'e t -> f:(eid:int -> 'e -> 'f) -> 'f t
(** Structure-preserving relabelling (fresh graph, same node/edge ids). *)

val copy : 'e t -> 'e t
(** Deep copy of structure; labels are shared. *)
