(** Graphviz DOT export, for debugging and the examples. *)

val to_dot :
  ?name:string ->
  ?node_name:(int -> string) ->
  ?edge_attr:(int -> 'e -> string) ->
  'e Graph.t ->
  string
(** [to_dot g] renders the graph in DOT syntax. [node_name] defaults to
    the node id; [edge_attr] (given the edge id and label) may return
    e.g. ["label=\"1Gbps\""] and defaults to no attributes. *)
