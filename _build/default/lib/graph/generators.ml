module Rng = Hmn_rng.Rng

let require cond msg = if not cond then invalid_arg ("Generators." ^ msg)

let line n =
  require (n >= 1) "line: n >= 1 required";
  let g = Graph.create ~n () in
  for i = 0 to n - 2 do
    ignore (Graph.add_edge g i (i + 1) ())
  done;
  g

let ring n =
  require (n >= 3) "ring: n >= 3 required";
  let g = line n in
  ignore (Graph.add_edge g (n - 1) 0 ());
  g

let star n =
  require (n >= 1) "star: n >= 1 required";
  let g = Graph.create ~n () in
  for i = 1 to n - 1 do
    ignore (Graph.add_edge g 0 i ())
  done;
  g

let complete n =
  require (n >= 1) "complete: n >= 1 required";
  let g = Graph.create ~n () in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      ignore (Graph.add_edge g i j ())
    done
  done;
  g

let torus2d ~rows ~cols =
  require (rows >= 1 && cols >= 1) "torus2d: rows, cols >= 1 required";
  let id r c = (r * cols) + c in
  let g = Graph.create ~n:(rows * cols) () in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      (* Right neighbour: plain grid edge, plus wrap when the row is
         long enough for the wrap not to duplicate a grid edge. *)
      if c + 1 < cols then ignore (Graph.add_edge g (id r c) (id r (c + 1)) ());
      if c = cols - 1 && cols > 2 then ignore (Graph.add_edge g (id r c) (id r 0) ());
      if r + 1 < rows then ignore (Graph.add_edge g (id r c) (id (r + 1) c) ());
      if r = rows - 1 && rows > 2 then ignore (Graph.add_edge g (id r c) (id 0 c) ())
    done
  done;
  g

let random_tree ~n ~rng =
  require (n >= 1) "random_tree: n >= 1 required";
  let g = Graph.create ~n () in
  for i = 1 to n - 1 do
    ignore (Graph.add_edge g i (Rng.int rng ~bound:i) ())
  done;
  g

let expected_edges ~n ~density =
  let max_edges = n * (n - 1) / 2 in
  let target = int_of_float (Float.round (density *. float_of_int max_edges)) in
  min max_edges (max (n - 1) target)

let random_connected ~n ~density ~rng =
  require (n >= 1) "random_connected: n >= 1 required";
  require (density >= 0. && density <= 1.) "random_connected: density in [0,1] required";
  let g = Graph.create ~n () in
  let seen = Hashtbl.create (4 * n) in
  let key u v = if u < v then (u, v) else (v, u) in
  let add u v =
    let k = key u v in
    if u <> v && not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      ignore (Graph.add_edge g u v ());
      true
    end
    else false
  in
  (* Spanning tree over a shuffled order so the tree shape is not biased
     toward low node ids. *)
  let order = Array.init n (fun i -> i) in
  Hmn_rng.Sample.shuffle rng order;
  for i = 1 to n - 1 do
    ignore (add order.(i) order.(Rng.int rng ~bound:i))
  done;
  let target = expected_edges ~n ~density in
  while Graph.n_edges g < target do
    ignore (add (Rng.int rng ~bound:n) (Rng.int rng ~bound:n))
  done;
  g

let barabasi_albert ~n ~m ~rng =
  require (m >= 1 && m < n) "barabasi_albert: 1 <= m < n required";
  let g = Graph.create ~n () in
  (* Repeated-node trick: the attachment pool holds each node once per
     incident edge end, so sampling from it is degree-proportional;
     one smoothing copy per node avoids zero-degree sinks. *)
  let pool = Hmn_dstruct.Dynarray.create () in
  for v = 0 to m - 1 do
    Hmn_dstruct.Dynarray.push pool v
  done;
  for v = m to n - 1 do
    let chosen = Hashtbl.create m in
    while Hashtbl.length chosen < m do
      let t =
        Hmn_dstruct.Dynarray.get pool
          (Rng.int rng ~bound:(Hmn_dstruct.Dynarray.length pool))
      in
      if t <> v then Hashtbl.replace chosen t ()
    done;
    Hashtbl.iter
      (fun t () ->
        ignore (Graph.add_edge g v t ());
        Hmn_dstruct.Dynarray.push pool t;
        Hmn_dstruct.Dynarray.push pool v)
      chosen
  done;
  g

let waxman ~n ~alpha ~beta ~rng =
  require (n >= 1) "waxman: n >= 1 required";
  require (alpha > 0. && alpha <= 1.) "waxman: alpha in (0,1] required";
  require (beta > 0. && beta <= 1.) "waxman: beta in (0,1] required";
  let xs = Array.init n (fun _ -> Rng.float rng) in
  let ys = Array.init n (fun _ -> Rng.float rng) in
  let g = Graph.create ~n () in
  let seen = Hashtbl.create (4 * n) in
  let key u v = if u < v then (u, v) else (v, u) in
  let add u v =
    let k = key u v in
    if u <> v && not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      ignore (Graph.add_edge g u v ())
    end
  in
  (* Connectivity backbone first. *)
  let order = Array.init n (fun i -> i) in
  Hmn_rng.Sample.shuffle rng order;
  for i = 1 to n - 1 do
    add order.(i) order.(Rng.int rng ~bound:i)
  done;
  let max_dist = sqrt 2. in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = sqrt (((xs.(u) -. xs.(v)) ** 2.) +. ((ys.(u) -. ys.(v)) ** 2.)) in
      if Rng.float rng < alpha *. exp (-.d /. (beta *. max_dist)) then add u v
    done
  done;
  g

let gnp ~n ~p ~rng =
  require (n >= 1) "gnp: n >= 1 required";
  require (p >= 0. && p <= 1.) "gnp: p in [0,1] required";
  let g = Graph.create ~n () in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng < p then ignore (Graph.add_edge g i j ())
    done
  done;
  g
