(* Directed graphs expose only out-edges through [iter_adj]; for weak
   connectivity we need both directions, so build a reverse adjacency
   view when required. *)
let iter_undirected_adj g reverse u f =
  Graph.iter_adj g u (fun ~neighbor ~eid:_ -> f neighbor);
  match reverse with
  | None -> ()
  | Some rev -> List.iter f rev.(u)

let reverse_adjacency g =
  match Graph.kind g with
  | Graph.Undirected -> None
  | Graph.Directed ->
    let rev = Array.make (Graph.n_nodes g) [] in
    Graph.iter_edges g (fun ~eid:_ ~u ~v _ -> rev.(v) <- u :: rev.(v));
    Some rev

let bfs_order g ~src =
  let n = Graph.n_nodes g in
  let seen = Hmn_dstruct.Bitset.create n in
  let queue = Queue.create () in
  Hmn_dstruct.Bitset.add seen src;
  Queue.add src queue;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    Graph.iter_adj g u (fun ~neighbor ~eid:_ ->
        if not (Hmn_dstruct.Bitset.mem seen neighbor) then begin
          Hmn_dstruct.Bitset.add seen neighbor;
          Queue.add neighbor queue
        end)
  done;
  List.rev !order

let bfs_hops g ~src =
  let n = Graph.n_nodes g in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_adj g u (fun ~neighbor ~eid:_ ->
        if dist.(neighbor) = max_int then begin
          dist.(neighbor) <- dist.(u) + 1;
          Queue.add neighbor queue
        end)
  done;
  dist

let dfs_preorder g ~src =
  let n = Graph.n_nodes g in
  let seen = Hmn_dstruct.Bitset.create n in
  let stack = Stack.create () in
  Stack.push src stack;
  let order = ref [] in
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    if not (Hmn_dstruct.Bitset.mem seen u) then begin
      Hmn_dstruct.Bitset.add seen u;
      order := u :: !order;
      (* Push in reverse adjacency order so exploration follows
         adjacency order. *)
      let adj = Graph.adj_list g u in
      List.iter (fun (v, _) -> if not (Hmn_dstruct.Bitset.mem seen v) then Stack.push v stack)
        (List.rev adj)
    end
  done;
  List.rev !order

let components g =
  let n = Graph.n_nodes g in
  let rev = reverse_adjacency g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for start = 0 to n - 1 do
    if comp.(start) = -1 then begin
      let id = !next in
      incr next;
      let queue = Queue.create () in
      comp.(start) <- id;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        iter_undirected_adj g rev u (fun v ->
            if comp.(v) = -1 then begin
              comp.(v) <- id;
              Queue.add v queue
            end)
      done
    end
  done;
  comp

let n_components g =
  let comp = components g in
  Array.fold_left max (-1) comp + 1

let is_connected g = n_components g <= 1
