let to_dot ?(name = "g") ?node_name ?edge_attr g =
  let node_name = Option.value node_name ~default:string_of_int in
  let buf = Buffer.create 1024 in
  let directed = Graph.kind g = Graph.Directed in
  Buffer.add_string buf (if directed then "digraph " else "graph ");
  Buffer.add_string buf (name ^ " {\n");
  for v = 0 to Graph.n_nodes g - 1 do
    Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" (node_name v))
  done;
  let arrow = if directed then " -> " else " -- " in
  Graph.iter_edges g (fun ~eid ~u ~v lab ->
      let attrs =
        match edge_attr with
        | None -> ""
        | Some f -> (
          match f eid lab with "" -> "" | a -> " [" ^ a ^ "]")
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\"%s\"%s\"%s;\n" (node_name u) arrow (node_name v) attrs));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
