type constraint_spec = {
  metric : int -> float;
  bound : float;
}

type path = {
  nodes : int list;
  edges : int list;
  cost : float;
  constraint_totals : float array;
}

(* Internal partial path; node/edge lists are kept reversed while
   growing. *)
type partial = {
  rev_nodes : int list;
  rev_edges : int list;
  last : int;
  cost_so_far : float;
  cons_so_far : float array;
  members : Hmn_dstruct.Bitset.t;
  projected : float;
}

let nonneg name x =
  if x < 0. then invalid_arg ("Astar_prune_k." ^ name ^ ": negative metric value");
  x

let k_shortest g ~k ~cost ~constraints ~src ~dst =
  let n = Graph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Astar_prune_k.k_shortest: endpoint out of range";
  if k <= 0 then invalid_arg "Astar_prune_k.k_shortest: k <= 0";
  let cost_to_go = Dijkstra.distances_to g ~weight:(fun e -> nonneg "cost" (cost e)) ~dst in
  let cons = Array.of_list constraints in
  let cons_to_go =
    Array.map
      (fun c -> Dijkstra.distances_to g ~weight:(fun e -> nonneg "constraint" (c.metric e)) ~dst)
      cons
  in
  let admissible last cons_so_far =
    (* Prune when any constraint cannot be met even via its own
       cheapest completion. *)
    let ok = ref true in
    Array.iteri
      (fun i c ->
        if cons_so_far.(i) +. cons_to_go.(i).(last) > c.bound then ok := false)
      cons;
    !ok
  in
  let heap =
    Hmn_dstruct.Binary_heap.create
      ~cmp:(fun a b -> Float.compare a.projected b.projected)
      ()
  in
  let start_members = Hmn_dstruct.Bitset.create n in
  Hmn_dstruct.Bitset.add start_members src;
  let start =
    {
      rev_nodes = [ src ];
      rev_edges = [];
      last = src;
      cost_so_far = 0.;
      cons_so_far = Array.map (fun _ -> 0.) cons;
      members = start_members;
      projected = cost_to_go.(src);
    }
  in
  if admissible src start.cons_so_far && cost_to_go.(src) < infinity then
    Hmn_dstruct.Binary_heap.push heap start;
  let results = ref [] and found = ref 0 in
  let finish p =
    {
      nodes = List.rev p.rev_nodes;
      edges = List.rev p.rev_edges;
      cost = p.cost_so_far;
      constraint_totals = Array.copy p.cons_so_far;
    }
  in
  let expand p =
    Graph.iter_adj g p.last (fun ~neighbor ~eid ->
        if not (Hmn_dstruct.Bitset.mem p.members neighbor) then begin
          let cons_so_far =
            Array.mapi (fun i c -> p.cons_so_far.(i) +. nonneg "constraint" (c.metric eid)) cons
          in
          if admissible neighbor cons_so_far && cost_to_go.(neighbor) < infinity then begin
            let members = Hmn_dstruct.Bitset.copy p.members in
            Hmn_dstruct.Bitset.add members neighbor;
            let cost_so_far = p.cost_so_far +. nonneg "cost" (cost eid) in
            Hmn_dstruct.Binary_heap.push heap
              {
                rev_nodes = neighbor :: p.rev_nodes;
                rev_edges = eid :: p.rev_edges;
                last = neighbor;
                cost_so_far;
                cons_so_far;
                members;
                projected = cost_so_far +. cost_to_go.(neighbor);
              }
          end
        end)
  in
  let rec loop () =
    if !found < k then
      match Hmn_dstruct.Binary_heap.pop heap with
      | None -> ()
      | Some p ->
        if p.last = dst then begin
          results := finish p :: !results;
          incr found;
          loop ()
        end
        else begin
          expand p;
          loop ()
        end
  in
  loop ();
  List.rev !results
