type path = {
  nodes : int list;
  edges : int list;
  cost : float;
}

(* Dijkstra on a filtered graph: nodes in [banned_nodes] and edges in
   [banned_edges] are invisible. Returns the best path from src to dst
   under the filter. *)
let filtered_shortest g ~cost ~banned_nodes ~banned_edges ~src ~dst =
  let n = Graph.n_nodes g in
  let dist = Array.make n infinity in
  let prev_node = Array.make n (-1) in
  let prev_edge = Array.make n (-1) in
  let heap = Hmn_dstruct.Indexed_heap.create n in
  dist.(src) <- 0.;
  Hmn_dstruct.Indexed_heap.insert heap src 0.;
  let rec loop () =
    match Hmn_dstruct.Indexed_heap.pop_min heap with
    | None -> ()
    | Some (u, du) ->
      if u <> dst then begin
        Graph.iter_adj g u (fun ~neighbor ~eid ->
            if
              (not (Hmn_dstruct.Bitset.mem banned_nodes neighbor))
              && not (Hashtbl.mem banned_edges eid)
            then begin
              let w = cost eid in
              if w < 0. then invalid_arg "Yen.k_shortest: negative cost";
              let alt = du +. w in
              if alt < dist.(neighbor) then begin
                dist.(neighbor) <- alt;
                prev_node.(neighbor) <- u;
                prev_edge.(neighbor) <- eid;
                Hmn_dstruct.Indexed_heap.insert_or_decrease heap neighbor alt
              end
            end);
        loop ()
      end
  in
  loop ();
  if dist.(dst) = infinity then None
  else begin
    let rec build v nodes edges =
      if v = src then (src :: nodes, edges)
      else build prev_node.(v) (v :: nodes) (prev_edge.(v) :: edges)
    in
    let nodes, edges = build dst [] [] in
    Some { nodes; edges; cost = dist.(dst) }
  end

let k_shortest g ~k ~cost ~src ~dst =
  let n = Graph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Yen.k_shortest: endpoint out of range";
  if k <= 0 then invalid_arg "Yen.k_shortest: k <= 0";
  if src = dst then [ { nodes = [ src ]; edges = []; cost = 0. } ]
  else begin
    let accepted = ref [] in
    (* Candidate pool ordered by (cost, node sequence) for
       deterministic tie-breaking; deduplicated by node sequence. *)
    let cmp a b =
      let c = Float.compare a.cost b.cost in
      if c <> 0 then c else compare a.nodes b.nodes
    in
    let candidates = ref (Hmn_dstruct.Pairing_heap.empty ~cmp) in
    let seen_candidates = Hashtbl.create 64 in
    let offer p =
      if not (Hashtbl.mem seen_candidates p.nodes) then begin
        Hashtbl.add seen_candidates p.nodes ();
        candidates := Hmn_dstruct.Pairing_heap.insert !candidates p
      end
    in
    let no_banned_edges = Hashtbl.create 1 in
    (match
       filtered_shortest g ~cost ~banned_nodes:(Hmn_dstruct.Bitset.create n)
         ~banned_edges:no_banned_edges ~src ~dst
     with
    | Some p -> offer p
    | None -> ());
    let continue = ref true in
    while !continue && List.length !accepted < k do
      match Hmn_dstruct.Pairing_heap.delete_min !candidates with
      | None -> continue := false
      | Some (best, rest) ->
        candidates := rest;
        accepted := best :: !accepted;
        if List.length !accepted < k then begin
          (* Spur from every prefix of the just-accepted path. *)
          let prev_nodes = Array.of_list best.nodes in
          let prev_edges = Array.of_list best.edges in
          for i = 0 to Array.length prev_edges - 1 do
            let spur_node = prev_nodes.(i) in
            let root_nodes = Array.sub prev_nodes 0 (i + 1) in
            let root_edges = Array.sub prev_edges 0 i in
            let root_cost =
              Array.fold_left (fun acc e -> acc +. cost e) 0. root_edges
            in
            (* Ban the next edge of every accepted path sharing this
               root, and every root node except the spur node. *)
            let banned_edges = Hashtbl.create 8 in
            List.iter
              (fun p ->
                let pn = Array.of_list p.nodes and pe = Array.of_list p.edges in
                if
                  Array.length pn > i
                  && Array.sub pn 0 (i + 1) = root_nodes
                  && Array.length pe > i
                then Hashtbl.replace banned_edges pe.(i) ())
              (best :: !accepted);
            let banned_nodes = Hmn_dstruct.Bitset.create n in
            Array.iteri
              (fun j v -> if j < i then Hmn_dstruct.Bitset.add banned_nodes v)
              root_nodes;
            match
              filtered_shortest g ~cost ~banned_nodes ~banned_edges ~src:spur_node
                ~dst
            with
            | None -> ()
            | Some spur ->
              let nodes = Array.to_list root_nodes @ List.tl spur.nodes in
              let edges = Array.to_list root_edges @ spur.edges in
              offer { nodes; edges; cost = root_cost +. spur.cost }
          done
        end
    done;
    List.rev !accepted
  end
