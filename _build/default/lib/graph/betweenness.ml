(* Brandes' algorithm: for every source s, a shortest-path DAG is built
   (BFS for unit weights, Dijkstra otherwise), then dependencies are
   accumulated in reverse finishing order:
     delta(v) = sum over successors w of (sigma(v)/sigma(w)) * (1 + delta(w))
   and each DAG edge (v, w) contributes (sigma(v)/sigma(w)) * (1 + delta(w)). *)

let eps = 1e-12

let run ?weight g ~on_edge ~on_node =
  let n = Graph.n_nodes g in
  let weight_fn =
    match weight with
    | None -> fun _ -> 1.
    | Some w ->
      fun e ->
        let x = w e in
        if x <= 0. then invalid_arg "Betweenness: non-positive weight";
        x
  in
  let dist = Array.make n infinity in
  let sigma = Array.make n 0. in
  let delta = Array.make n 0. in
  (* preds.(v): (predecessor, edge id) pairs on shortest paths. *)
  let preds = Array.make n [] in
  for s = 0 to n - 1 do
    Array.fill dist 0 n infinity;
    Array.fill sigma 0 n 0.;
    Array.fill delta 0 n 0.;
    Array.iteri (fun i _ -> preds.(i) <- []) preds;
    dist.(s) <- 0.;
    sigma.(s) <- 1.;
    (* Dijkstra with shortest-path counting; pop order gives the
       non-decreasing-distance order needed for accumulation. *)
    let order = ref [] in
    let heap = Hmn_dstruct.Indexed_heap.create n in
    Hmn_dstruct.Indexed_heap.insert heap s 0.;
    let rec settle () =
      match Hmn_dstruct.Indexed_heap.pop_min heap with
      | None -> ()
      | Some (u, du) ->
        order := u :: !order;
        Graph.iter_adj g u (fun ~neighbor ~eid ->
            let alt = du +. weight_fn eid in
            if alt < dist.(neighbor) -. eps then begin
              dist.(neighbor) <- alt;
              sigma.(neighbor) <- sigma.(u);
              preds.(neighbor) <- [ (u, eid) ];
              Hmn_dstruct.Indexed_heap.insert_or_decrease heap neighbor alt
            end
            else if Float.abs (alt -. dist.(neighbor)) <= eps then begin
              sigma.(neighbor) <- sigma.(neighbor) +. sigma.(u);
              preds.(neighbor) <- (u, eid) :: preds.(neighbor)
            end);
        settle ()
    in
    settle ();
    (* Reverse order: farthest node first. *)
    List.iter
      (fun w ->
        List.iter
          (fun (v, eid) ->
            let share = sigma.(v) /. sigma.(w) *. (1. +. delta.(w)) in
            on_edge eid share;
            delta.(v) <- delta.(v) +. share)
          preds.(w);
        if w <> s then on_node w delta.(w))
      !order
  done

let edges ?weight g =
  let acc = Array.make (Graph.n_edges g) 0. in
  run ?weight g
    ~on_edge:(fun eid share -> acc.(eid) <- acc.(eid) +. share)
    ~on_node:(fun _ _ -> ());
  acc

let nodes ?weight g =
  let acc = Array.make (Graph.n_nodes g) 0. in
  run ?weight g
    ~on_edge:(fun _ _ -> ())
    ~on_node:(fun v d -> acc.(v) <- acc.(v) +. d);
  acc
