(** All-pairs shortest paths (Floyd–Warshall).

    O(n³); intended for moderate graphs and as an oracle in tests
    cross-checking {!Dijkstra}. *)

val run : 'e Graph.t -> weight:(int -> float) -> float array array
(** [run g ~weight] is the matrix of shortest-path costs;
    [infinity] marks unreachable pairs, and the diagonal is [0.].
    Parallel edges contribute their cheapest member. Raises on negative
    weights (the algorithm would support them, but nothing in this
    project produces them and rejecting keeps the oracle comparable to
    Dijkstra). *)
