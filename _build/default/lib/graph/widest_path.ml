type result = {
  width : float array;
  prev_node : int array;
  prev_edge : int array;
}

let run g ~capacity ~src =
  let n = Graph.n_nodes g in
  if src < 0 || src >= n then invalid_arg "Widest_path.run: source out of range";
  let width = Array.make n neg_infinity in
  let prev_node = Array.make n (-1) in
  let prev_edge = Array.make n (-1) in
  (* Indexed_heap is a min-heap; store negated widths. *)
  let heap = Hmn_dstruct.Indexed_heap.create n in
  width.(src) <- infinity;
  Hmn_dstruct.Indexed_heap.insert heap src neg_infinity;
  let rec loop () =
    match Hmn_dstruct.Indexed_heap.pop_min heap with
    | None -> ()
    | Some (u, _) ->
      Graph.iter_adj g u (fun ~neighbor ~eid ->
          let c = capacity eid in
          if c < 0. then invalid_arg "Widest_path.run: negative capacity";
          let through = Float.min width.(u) c in
          if through > width.(neighbor) then begin
            width.(neighbor) <- through;
            prev_node.(neighbor) <- u;
            prev_edge.(neighbor) <- eid;
            Hmn_dstruct.Indexed_heap.insert_or_decrease heap neighbor (-.through)
          end);
      loop ()
  in
  loop ();
  { width; prev_node; prev_edge }

let path_to res v =
  if res.width.(v) = neg_infinity then None
  else begin
    let rec build v nodes edges =
      if res.prev_node.(v) = -1 then (v :: nodes, edges)
      else build res.prev_node.(v) (v :: nodes) (res.prev_edge.(v) :: edges)
    in
    Some (build v [] [])
  end
