(** Breadth-first / depth-first traversals and connectivity. *)

val bfs_order : 'e Graph.t -> src:int -> int list
(** Nodes reachable from [src] in BFS visiting order (starting with
    [src] itself). *)

val bfs_hops : 'e Graph.t -> src:int -> int array
(** Hop distance from [src] to every node; unreachable nodes get
    [max_int]. *)

val dfs_preorder : 'e Graph.t -> src:int -> int list
(** Nodes reachable from [src] in (iterative) DFS preorder. Neighbors
    are explored in adjacency order. *)

val components : 'e Graph.t -> int array
(** [components g] labels every node with a component id in
    [0 .. k-1]; ids are assigned in order of lowest member node.
    Directed graphs are treated as undirected (weak components). *)

val n_components : 'e Graph.t -> int

val is_connected : 'e Graph.t -> bool
(** [true] when the graph has at most one (weak) component. The empty
    graph counts as connected. *)
