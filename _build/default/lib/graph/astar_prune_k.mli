(** A\*Prune: K shortest loopless paths subject to multiple additive
    constraints (Liu & Ramakrishnan, INFOCOM 2001).

    This is the general algorithm the paper's Networking stage is a
    modification of. Partial paths are kept in a priority queue ordered
    by {e projected} cost — cost so far plus an admissible lower bound
    (Dijkstra distance-to-go) — and a partial path is pruned as soon as
    any constraint's accumulated value plus its own lower bound exceeds
    the bound, so every expansion is provably extensible w.r.t. the
    lower bounds. *)

type constraint_spec = {
  metric : int -> float;  (** additive per-edge metric (by edge id), >= 0 *)
  bound : float;  (** inclusive upper bound on the path total *)
}

type path = {
  nodes : int list;  (** [src ... dst] *)
  edges : int list;  (** edge ids along the path, length = |nodes| - 1 *)
  cost : float;  (** total of the optimization metric *)
  constraint_totals : float array;  (** per-constraint accumulated totals *)
}

val k_shortest :
  'e Graph.t ->
  k:int ->
  cost:(int -> float) ->
  constraints:constraint_spec list ->
  src:int ->
  dst:int ->
  path list
(** Up to [k] loopless paths in non-decreasing [cost] order, each
    satisfying every constraint. [src = dst] yields the single empty
    path when it satisfies the (necessarily zero-total) constraints.
    Raises [Invalid_argument] on out-of-range endpoints, [k <= 0], or a
    negative metric value. *)
