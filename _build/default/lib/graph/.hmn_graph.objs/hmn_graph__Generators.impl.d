lib/graph/generators.ml: Array Float Graph Hashtbl Hmn_dstruct Hmn_rng
