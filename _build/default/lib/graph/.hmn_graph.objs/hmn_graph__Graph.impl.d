lib/graph/graph.ml: Array Hmn_dstruct List
