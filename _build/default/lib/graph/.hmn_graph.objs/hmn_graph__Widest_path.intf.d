lib/graph/widest_path.mli: Graph
