lib/graph/betweenness.mli: Graph
