lib/graph/yen.mli: Graph
