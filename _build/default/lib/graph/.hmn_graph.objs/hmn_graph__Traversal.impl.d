lib/graph/traversal.ml: Array Graph Hmn_dstruct List Queue Stack
