lib/graph/floyd_warshall.mli: Graph
