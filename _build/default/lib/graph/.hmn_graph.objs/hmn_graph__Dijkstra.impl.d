lib/graph/dijkstra.ml: Array Graph Hmn_dstruct List
