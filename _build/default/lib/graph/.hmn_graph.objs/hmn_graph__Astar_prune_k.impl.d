lib/graph/astar_prune_k.ml: Array Dijkstra Float Graph Hmn_dstruct List
