lib/graph/graph.mli:
