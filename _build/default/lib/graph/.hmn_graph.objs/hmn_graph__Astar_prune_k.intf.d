lib/graph/astar_prune_k.mli: Graph
