lib/graph/widest_path.ml: Array Float Graph Hmn_dstruct
