lib/graph/betweenness.ml: Array Float Graph Hmn_dstruct List
