lib/graph/yen.ml: Array Float Graph Hashtbl Hmn_dstruct List
