lib/graph/dot.ml: Buffer Graph Option Printf
