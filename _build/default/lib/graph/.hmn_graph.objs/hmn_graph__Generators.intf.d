lib/graph/generators.mli: Graph Hmn_rng
