(** Widest (maximum-bottleneck) paths.

    The width of a path is the minimum capacity of its edges; the widest
    path maximizes that minimum. This is the metric the paper's modified
    A\*Prune optimizes; having an independent single-criterion solver
    lets tests cross-check the constrained search. *)

type result = {
  width : float array;
      (** best attainable bottleneck from the source; [neg_infinity] if
          unreachable, [infinity] at the source itself *)
  prev_node : int array;
  prev_edge : int array;
}

val run : 'e Graph.t -> capacity:(int -> float) -> src:int -> result
(** Dijkstra-style maximization of the path bottleneck. Capacities must
    be non-negative. *)

val path_to : result -> int -> (int list * int list) option
(** Reconstructs a widest path (nodes, edge ids); [None] if
    unreachable. *)
