let run g ~weight =
  let n = Graph.n_nodes g in
  let dist = Array.init n (fun i -> Array.init n (fun j -> if i = j then 0. else infinity)) in
  Graph.iter_edges g (fun ~eid ~u ~v _ ->
      let w = weight eid in
      if w < 0. then invalid_arg "Floyd_warshall.run: negative weight";
      if w < dist.(u).(v) then dist.(u).(v) <- w;
      if Graph.kind g = Graph.Undirected && w < dist.(v).(u) then dist.(v).(u) <- w);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = dist.(i).(k) in
      if dik < infinity then
        for j = 0 to n - 1 do
          let alt = dik +. dist.(k).(j) in
          if alt < dist.(i).(j) then dist.(i).(j) <- alt
        done
    done
  done;
  dist
