(** Single-source shortest paths with non-negative edge weights.

    Weights are supplied as a function of edge id, so one graph can be
    queried under several metrics (hop count, latency, inverse
    bandwidth) without relabelling. *)

type result = {
  dist : float array;  (** [dist.(v)]: cost of the best path, [infinity] if unreachable *)
  prev_node : int array;  (** predecessor on a best path, [-1] at source/unreachable *)
  prev_edge : int array;  (** edge id used to reach the node, [-1] likewise *)
}

val run : 'e Graph.t -> weight:(int -> float) -> src:int -> result
(** Raises [Invalid_argument] on an out-of-range source or if a negative
    weight is encountered. *)

val distances_to : 'e Graph.t -> weight:(int -> float) -> dst:int -> float array
(** [distances_to g ~weight ~dst] is the cost of the best path from
    every node {e to} [dst]. On an undirected graph this is [run]'s
    [dist] from [dst]; on a directed graph edges are traversed
    backwards. This is the "latency-to-go" table the paper's A\*Prune
    variant precomputes. *)

val path_to : result -> int -> (int list * int list) option
(** [path_to res v] reconstructs a best path to [v] as
    [(nodes, edge_ids)], nodes from source to [v]; [None] if
    unreachable. *)
