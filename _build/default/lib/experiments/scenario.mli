(** The evaluation scenarios of Tables 2–3: a guests-per-host ratio, a
    virtual-graph density, and the workload family; each is mapped on
    both physical clusters. *)

type workload_kind = High_level | Low_level

type cluster_kind = Torus | Switched

type t = {
  ratio : float;  (** guests per host, e.g. 2.5 *)
  density : float;  (** virtual-graph edge density, e.g. 0.015 *)
  workload : workload_kind;
}

val paper_scenarios : t list
(** The 16 rows of Table 2: high-level ratios {2.5, 5, 7.5, 10} ×
    densities {0.015, 0.02, 0.025}, then low-level ratios
    {20, 30, 40, 50} at density 0.01. *)

val n_guests : t -> int
(** [ratio * 40], rounded. *)

val profile : t -> Hmn_vnet.Workload.profile

val label : t -> string
(** e.g. ["2.5:1 0.015"], matching the paper's row labels. *)

val cluster_label : cluster_kind -> string

val build_cluster :
  cluster_kind -> rng:Hmn_rng.Rng.t -> Hmn_testbed.Cluster.t

val build :
  t -> cluster_kind -> seed:int -> Hmn_mapping.Problem.t
(** Deterministic problem instance for (scenario, cluster, seed):
    generates the heterogeneous cluster and the virtual environment
    (with the feasibility calibration of {!Setup.fit_fraction}) from a
    seed-derived stream, so every heuristic sees the identical
    instance. *)
