(** CSV export of experiment results, for external plotting. *)

val cells : Runner.results -> string
(** One line per (scenario, cluster, heuristic) cell:
    [scenario,cluster,heuristic,successes,failures,obj_mean,obj_sd,
    maptime_mean,maptime_sd,makespan_mean,makespan_sd,tries_mean]. Empty
    fields where a statistic has no samples. *)

val figure1 : Figure1.point list -> string
(** [n_guests,n_vlinks,inter_host_links,mean_s,stddev_s,reps] lines. *)
