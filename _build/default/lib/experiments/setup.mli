(** Single source of truth for the paper's Table 1 simulation setup. *)

val n_hosts : int
(** 40 *)

val torus_rows : int
(** 5 — a 5×8 2-D torus holds the 40 hosts *)

val torus_cols : int
(** 8 *)

val switch_ports : int
(** 64 — the paper's cascaded switches *)

val physical_link : Hmn_testbed.Link.t
(** 1 Gbps / 5 ms *)

val paper_repetitions : int
(** 30 — each scenario is repeated this many times in the paper *)

val fit_fraction : float
(** 0.85 — feasibility calibration applied to aggregate guest
    memory/storage (see {!Hmn_vnet.Venv_gen.generate} and DESIGN.md
    §3). *)

val vmm : Hmn_testbed.Vmm.t
(** Zero: Table 1 host capacities are taken as already net of the VMM
    share. *)

val host_profile : Hmn_testbed.Cluster_gen.host_profile
(** Memory U[1,3] GB, storage U[1,3] TB, CPU U[1000,3000] MIPS. *)

val render : unit -> string
(** The Table 1 summary as text. *)
