let full ?config ?figure1_reps () =
  let results = Runner.run ?config () in
  let fig_points = Figure1.run ?reps:figure1_reps () in
  let buf = Buffer.create 8192 in
  let section title body =
    Buffer.add_string buf ("== " ^ title ^ " ==\n");
    Buffer.add_string buf body;
    Buffer.add_char buf '\n'
  in
  section "Table 1: simulation setup" (Setup.render ());
  Buffer.add_string buf
    (Printf.sprintf "(reps=%d, max_tries=%d, seed=%d)\n\n"
       results.Runner.config.Runner.reps results.Runner.config.Runner.max_tries
       results.Runner.config.Runner.base_seed);
  section "Table 2: objective function and failures" (Tables.table2 results);
  section "Table 3: simulated experiment time" (Tables.table3 results);
  section "Mapping wall-clock time" (Tables.mapping_time results);
  section "Objective vs experiment-time correlation"
    (Tables.correlation_report results);
  section "Figure 1: HMN mapping time vs virtual links" (Figure1.render fig_points);
  Buffer.contents buf
