module Running = Hmn_stats.Running

type verdict = {
  claim : string;
  holds : bool;
  detail : string;
}

let clusters = [ Scenario.Torus; Scenario.Switched ]

(* Mean objective of a cell, when it has successes. *)
let cell_stat results ~scenario ~cluster ~mapper ~stat =
  match Runner.cell results ~scenario ~cluster ~mapper with
  | None -> None
  | Some c ->
    let r = stat c in
    if Running.count r = 0 then None else Some (Running.mean r)

let objective results ~scenario ~cluster ~mapper =
  cell_stat results ~scenario ~cluster ~mapper ~stat:(fun c -> c.Runner.objective)

let makespan results ~scenario ~cluster ~mapper =
  cell_stat results ~scenario ~cluster ~mapper ~stat:(fun c -> c.Runner.makespan)

let failures results ~cluster ~mapper =
  let total = ref 0 in
  Array.iteri
    (fun scenario _ ->
      match Runner.cell results ~scenario ~cluster ~mapper with
      | Some c -> total := !total + c.Runner.failures
      | None -> ())
    results.Runner.scenarios;
  !total

(* Count cells where [pred a b] holds among cells where both mappers
   produced numbers. *)
let paired_cells results ~a ~b ~stat ~pred =
  let hold = ref 0 and total = ref 0 in
  Array.iteri
    (fun scenario _ ->
      List.iter
        (fun cluster ->
          match
            ( cell_stat results ~scenario ~cluster ~mapper:a ~stat,
              cell_stat results ~scenario ~cluster ~mapper:b ~stat )
          with
          | Some va, Some vb ->
            incr total;
            if pred va vb then incr hold
          | _ -> ())
        clusters)
    results.Runner.scenarios;
  (!hold, !total)

let fraction_check ~claim ~threshold (hold, total) =
  {
    claim;
    holds = total > 0 && float_of_int hold >= threshold *. float_of_int total;
    detail = Printf.sprintf "%d of %d comparable cells" hold total;
  }

let check_hmn_beats_random results =
  fraction_check
    ~claim:"HMN's objective beats R and RA (paper: every row)" ~threshold:0.9
    (let h1, t1 =
       paired_cells results ~a:"HMN" ~b:"R"
         ~stat:(fun c -> c.Runner.objective)
         ~pred:(fun a b -> a < b)
     in
     let h2, t2 =
       paired_cells results ~a:"HMN" ~b:"RA"
         ~stat:(fun c -> c.Runner.objective)
         ~pred:(fun a b -> a < b)
     in
     (h1 + h2, t1 + t2))

let high_level_extremes results =
  (* Indices of the high-level scenarios with the smallest and largest
     ratio (any density). *)
  let best = ref None and worst = ref None in
  Array.iteri
    (fun i s ->
      if s.Scenario.workload = Scenario.High_level then begin
        (match !best with
        | Some (_, r) when r <= s.Scenario.ratio -> ()
        | _ -> best := Some (i, s.Scenario.ratio));
        match !worst with
        | Some (_, r) when r >= s.Scenario.ratio -> ()
        | _ -> worst := Some (i, s.Scenario.ratio)
      end)
    results.Runner.scenarios;
  (!best, !worst)

let check_advantage_shrinks results =
  (* Relative advantage (RA - HMN) / RA at the lowest vs highest
     high-level ratio, averaged over clusters. *)
  let advantage scenario =
    let values =
      List.filter_map
        (fun cluster ->
          match
            ( objective results ~scenario ~cluster ~mapper:"HMN",
              objective results ~scenario ~cluster ~mapper:"RA" )
          with
          | Some h, Some r when r > 0. -> Some ((r -. h) /. r)
          | _ -> None)
        clusters
    in
    match values with
    | [] -> None
    | _ -> Some (List.fold_left ( +. ) 0. values /. float_of_int (List.length values))
  in
  match high_level_extremes results with
  | Some (lo, lo_ratio), Some (hi, hi_ratio) -> (
    match (advantage lo, advantage hi) with
    | Some at_low, Some at_high ->
      {
        claim =
          "HMN's relative advantage over RA shrinks from the lowest to the \
           highest high-level ratio";
        holds = at_high < at_low;
        detail =
          Printf.sprintf "%.0f%% at %.1f:1 -> %.0f%% at %.1f:1" (100. *. at_low)
            lo_ratio (100. *. at_high) hi_ratio;
      }
    | _ ->
      { claim = "HMN advantage shrinks with ratio"; holds = false;
        detail = "insufficient data" })
  | _ ->
    { claim = "HMN advantage shrinks with ratio"; holds = false;
      detail = "no high-level scenarios" }

let check_r_equals_ra results =
  fraction_check
    ~claim:"R and RA objectives agree within 10% (routing does not move the \
            placement objective)"
    ~threshold:0.8
    (paired_cells results ~a:"R" ~b:"RA"
       ~stat:(fun c -> c.Runner.objective)
       ~pred:(fun a b -> Float.abs (a -. b) <= 0.1 *. Float.max a b))

let check_failures results =
  let hmn =
    List.fold_left (fun acc c -> acc + failures results ~cluster:c ~mapper:"HMN") 0 clusters
  in
  let ra =
    List.fold_left (fun acc c -> acc + failures results ~cluster:c ~mapper:"RA") 0 clusters
  in
  let budget = (2 * results.Runner.config.Runner.reps) + 4 in
  {
    claim = "HMN fails at most a handful more than RA (both route with A*Prune)";
    holds = hmn <= ra + budget;
    detail = Printf.sprintf "HMN %d vs RA %d failures" hmn ra;
  }

let check_time_grows results =
  match high_level_extremes results with
  | Some (lo, _), Some (hi, _) ->
    let grows cluster =
      match
        ( makespan results ~scenario:lo ~cluster ~mapper:"HMN",
          makespan results ~scenario:hi ~cluster ~mapper:"HMN" )
      with
      | Some a, Some b -> b > a
      | _ -> false
    in
    {
      claim = "simulated experiment time grows with the ratio (HMN, both clusters)";
      holds = List.for_all grows clusters;
      detail =
        String.concat ", "
          (List.map
             (fun cluster ->
               Printf.sprintf "%s: %s -> %s" (Scenario.cluster_label cluster)
                 (match makespan results ~scenario:lo ~cluster ~mapper:"HMN" with
                 | Some v -> Printf.sprintf "%.2fs" v
                 | None -> "?")
                 (match makespan results ~scenario:hi ~cluster ~mapper:"HMN" with
                 | Some v -> Printf.sprintf "%.2fs" v
                 | None -> "?"))
             clusters);
    }
  | _ -> { claim = "experiment time grows"; holds = false; detail = "no data" }

let check_hmn_faster_experiments results =
  fraction_check
    ~claim:"HMN's emulated experiments finish sooner than R's" ~threshold:0.75
    (paired_cells results ~a:"HMN" ~b:"R"
       ~stat:(fun c -> c.Runner.makespan)
       ~pred:(fun a b -> a < b))

let check_correlation results =
  match Hmn_emulation.Correlate.median_within_group results.Runner.correlation with
  | Some r ->
    {
      claim = "median within-scenario objective/makespan Pearson r >= 0.5 (paper: 0.7)";
      holds = r >= 0.5;
      detail = Printf.sprintf "r = %.2f" r;
    }
  | None ->
    { claim = "objective/makespan correlation"; holds = false;
      detail = "no simulated runs" }

let check_all results =
  [
    check_hmn_beats_random results;
    check_advantage_shrinks results;
    check_r_equals_ra results;
    check_failures results;
    check_time_grows results;
    check_hmn_faster_experiments results;
    check_correlation results;
  ]

let render verdicts =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Reproduction shape checks:\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %s (%s)\n" (if v.holds then "ok" else "!!") v.claim
           v.detail))
    verdicts;
  Buffer.contents buf

let all_hold verdicts = List.for_all (fun v -> v.holds) verdicts
