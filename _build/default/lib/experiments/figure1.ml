module Running = Hmn_stats.Running

type point = {
  n_guests : int;
  n_vlinks : int;
  inter_host_links : int;
  mean_s : float;
  stddev_s : float;
  reps : int;
}

let default_sweep =
  [
    (100, 0.02, Scenario.High_level);
    (200, 0.02, Scenario.High_level);
    (400, 0.02, Scenario.High_level);
    (800, 0.01, Scenario.Low_level);
    (1200, 0.01, Scenario.Low_level);
    (1600, 0.01, Scenario.Low_level);
    (2000, 0.01, Scenario.Low_level);
  ]

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)

let run ?(sweep = default_sweep) ?reps ?(seed = 42) () =
  let reps = match reps with Some r -> r | None -> env_int "HMN_REPS" 3 in
  List.filter_map
    (fun (n, density, workload) ->
      let profile =
        match workload with
        | Scenario.High_level -> Hmn_vnet.Workload.high_level
        | Scenario.Low_level -> Hmn_vnet.Workload.low_level
      in
      let times = Running.create () in
      let vlinks = ref 0 and inter = ref 0 in
      for rep = 0 to reps - 1 do
        let rng = Hmn_rng.Rng.create (seed + (1000 * n) + rep) in
        let cluster = Scenario.build_cluster Scenario.Torus ~rng in
        let venv =
          Hmn_vnet.Venv_gen.generate
            ~scale_to_fit:(cluster, Setup.fit_fraction)
            ~profile ~n ~density ~rng ()
        in
        let problem = Hmn_mapping.Problem.make ~cluster ~venv in
        vlinks := Hmn_vnet.Virtual_env.n_vlinks venv;
        let outcome, report = Hmn_core.Hmn.run_detailed problem in
        match outcome.Hmn_core.Mapper.result with
        | Ok _ ->
          Running.add times outcome.Hmn_core.Mapper.elapsed_s;
          (match report.Hmn_core.Hmn.networking_stats with
          | Some s -> inter := s.Hmn_core.Networking.routed
          | None -> ())
        | Error _ -> ()
      done;
      if Running.count times = 0 then None
      else
        Some
          {
            n_guests = n;
            n_vlinks = !vlinks;
            inter_host_links = !inter;
            mean_s = Running.mean times;
            stddev_s = Running.stddev times;
            reps = Running.count times;
          })
    sweep

let render points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Figure 1. HMN mapping time vs number of virtual links (torus cluster).\n";
  let max_mean =
    List.fold_left (fun acc p -> Float.max acc p.mean_s) 1e-9 points
  in
  List.iter
    (fun p ->
      let bar_len = int_of_float (40. *. p.mean_s /. max_mean) in
      Buffer.add_string buf
        (Printf.sprintf "%6d links (%4d guests, %5d routed): %8.3f s +- %6.3f  %s\n"
           p.n_vlinks p.n_guests p.inter_host_links p.mean_s p.stddev_s
           (String.make (max bar_len 1) '#')))
    points;
  Buffer.contents buf
