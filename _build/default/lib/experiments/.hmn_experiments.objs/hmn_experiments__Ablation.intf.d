lib/experiments/ablation.mli:
