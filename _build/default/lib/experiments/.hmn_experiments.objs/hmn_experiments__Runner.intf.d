lib/experiments/runner.mli: Hashtbl Hmn_core Hmn_emulation Hmn_stats Scenario
