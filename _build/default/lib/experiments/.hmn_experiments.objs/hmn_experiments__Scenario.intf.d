lib/experiments/scenario.mli: Hmn_mapping Hmn_rng Hmn_testbed Hmn_vnet
