lib/experiments/tables.ml: Array Hmn_emulation Hmn_prelude Hmn_stats List Printf Runner Scenario
