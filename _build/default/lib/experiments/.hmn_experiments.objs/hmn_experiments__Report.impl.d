lib/experiments/report.ml: Buffer Figure1 Printf Runner Setup Tables
