lib/experiments/setup.ml: Hmn_prelude Hmn_testbed
