lib/experiments/scenario.ml: Float Hmn_mapping Hmn_rng Hmn_testbed Hmn_vnet List Printf Setup
