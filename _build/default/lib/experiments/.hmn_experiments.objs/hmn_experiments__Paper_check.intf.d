lib/experiments/paper_check.mli: Runner
