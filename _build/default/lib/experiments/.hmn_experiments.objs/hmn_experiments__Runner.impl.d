lib/experiments/runner.ml: Array Hashtbl Hmn_core Hmn_emulation Hmn_mapping Hmn_rng Hmn_stats List Printf Scenario Sys
