lib/experiments/csv.ml: Array Buffer Figure1 Hmn_stats List Printf Runner Scenario
