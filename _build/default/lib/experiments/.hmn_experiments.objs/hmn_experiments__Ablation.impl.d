lib/experiments/ablation.ml: Array Fun Hashtbl Hmn_core Hmn_emulation Hmn_graph Hmn_mapping Hmn_prelude Hmn_rng Hmn_routing Hmn_stats Hmn_testbed Hmn_vnet List Printf Scenario Setup String
