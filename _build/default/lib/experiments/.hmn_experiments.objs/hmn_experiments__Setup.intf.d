lib/experiments/setup.mli: Hmn_testbed
