lib/experiments/figure1.ml: Buffer Float Hmn_core Hmn_mapping Hmn_rng Hmn_stats Hmn_vnet List Printf Scenario Setup String Sys
