lib/experiments/paper_check.ml: Array Buffer Float Hmn_emulation Hmn_stats List Printf Runner Scenario String
