lib/experiments/csv.mli: Figure1 Runner
