lib/experiments/report.mli: Runner
