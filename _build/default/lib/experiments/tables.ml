module Running = Hmn_stats.Running
module Table = Hmn_prelude.Pretty_table

let clusters = [ Scenario.Torus; Scenario.Switched ]

let header results =
  let names = Runner.mapper_names results in
  ""
  :: List.concat_map
       (fun cluster ->
         List.map
           (fun name -> Printf.sprintf "%s %s" (Scenario.cluster_label cluster) name)
           names)
       clusters

let render_metric results ~metric =
  let names = Runner.mapper_names results in
  let t =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) (List.tl (header results)))
      ~header:(header results) ()
  in
  Array.iteri
    (fun idx scenario ->
      let row =
        Scenario.label scenario
        :: List.concat_map
             (fun cluster ->
               List.map
                 (fun mapper ->
                   match Runner.cell results ~scenario:idx ~cluster ~mapper with
                   | None -> "?"
                   | Some c -> metric c)
                 names)
             clusters
      in
      Table.add_row t row)
    results.Runner.scenarios;
  t

let mean_or_dash running fmt =
  if Running.count running = 0 then "-" else Printf.sprintf fmt (Running.mean running)

let table2 results =
  let t =
    render_metric results ~metric:(fun c -> mean_or_dash c.Runner.objective "%.1f")
  in
  (* Failure-count row, as in the paper's Table 2. *)
  let names = Runner.mapper_names results in
  let failures =
    List.concat_map
      (fun cluster ->
        List.map
          (fun mapper ->
            let total = ref 0 in
            Array.iteri
              (fun idx _ ->
                match Runner.cell results ~scenario:idx ~cluster ~mapper with
                | Some c -> total := !total + c.Runner.failures
                | None -> ())
              results.Runner.scenarios;
            string_of_int !total)
          names)
      clusters
  in
  Table.add_row t ("Failures" :: failures);
  "Table 2. Objective function (mean LBF over successful runs, MIPS) and failures.\n"
  ^ Table.render t

let table3 results =
  "Table 3. Simulated experiment execution time (mean seconds over successful \
   runs).\n"
  ^ Table.render
      (render_metric results ~metric:(fun c -> mean_or_dash c.Runner.makespan "%.2f"))

let mapping_time results =
  "Mapping wall-clock time (mean seconds over successful runs).\n"
  ^ Table.render
      (render_metric results ~metric:(fun c -> mean_or_dash c.Runner.map_time "%.4f"))

let correlation_report results =
  let c = results.Runner.correlation in
  if Hmn_emulation.Correlate.count c < 2 then
    "Correlation: not enough successful simulated runs.\n"
  else begin
    let within =
      match Hmn_emulation.Correlate.median_within_group c with
      | None -> "n/a"
      | Some r -> Printf.sprintf "%.2f" r
    in
    Printf.sprintf
      "Correlation between objective function and simulated experiment time over %d \
       runs:\n\
      \  pooled: Pearson r = %.2f, Spearman rho = %.2f\n\
      \  median within-scenario Pearson r = %s (paper reports r = 0.7; \
       within-scenario is the comparable figure, see EXPERIMENTS.md)\n"
      (Hmn_emulation.Correlate.count c)
      (Hmn_emulation.Correlate.pearson c)
      (Hmn_emulation.Correlate.spearman c)
      within
  end
