module Mapper = Hmn_core.Mapper
module Running = Hmn_stats.Running

type config = {
  reps : int;
  max_tries : int;
  base_seed : int;
  app : Hmn_emulation.App.t;
  simulate : bool;
  mappers : Mapper.t list;
  verbose : bool;
}

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)

let default_config () =
  let max_tries = env_int "HMN_MAX_TRIES" 200 in
  {
    reps = env_int "HMN_REPS" 5;
    max_tries;
    base_seed = env_int "HMN_SEED" 20090922;
    app = Hmn_emulation.App.default;
    simulate = true;
    mappers = Hmn_core.Registry.paper ~max_tries ();
    verbose = Sys.getenv_opt "HMN_VERBOSE" <> None;
  }

type cell = {
  successes : int;
  failures : int;
  objective : Running.t;
  map_time : Running.t;
  makespan : Running.t;
  tries : Running.t;
}

let fresh_cell () =
  {
    successes = 0;
    failures = 0;
    objective = Running.create ();
    map_time = Running.create ();
    makespan = Running.create ();
    tries = Running.create ();
  }

type results = {
  config : config;
  scenarios : Scenario.t array;
  cells : (int * Scenario.cluster_kind * string, cell) Hashtbl.t;
  correlation : Hmn_emulation.Correlate.t;
}

let instance_seed config ~scenario_idx ~cluster ~rep =
  let cluster_tag = match cluster with Scenario.Torus -> 0 | Scenario.Switched -> 1 in
  config.base_seed + (1_000_000 * scenario_idx) + (100_000 * cluster_tag) + rep

(* A distinct, deterministic stream per (instance, mapper): baselines
   must not share randomness or their retries would be correlated. *)
let mapper_rng ~seed ~mapper_name =
  Hmn_rng.Rng.create (seed + (17 * Hashtbl.hash mapper_name))

let run ?config () =
  let config = match config with Some c -> c | None -> default_config () in
  let scenarios = Array.of_list Scenario.paper_scenarios in
  let cells = Hashtbl.create 256 in
  let correlation = Hmn_emulation.Correlate.create () in
  let get_cell key =
    match Hashtbl.find_opt cells key with
    | Some c -> c
    | None ->
      let c = fresh_cell () in
      Hashtbl.add cells key c;
      c
  in
  let clusters = [ Scenario.Torus; Scenario.Switched ] in
  Array.iteri
    (fun scenario_idx scenario ->
      List.iter
        (fun cluster ->
          for rep = 0 to config.reps - 1 do
            let seed = instance_seed config ~scenario_idx ~cluster ~rep in
            let problem = Scenario.build scenario cluster ~seed in
            List.iter
              (fun mapper ->
                let rng = mapper_rng ~seed ~mapper_name:mapper.Mapper.name in
                let outcome = mapper.Mapper.run ~rng problem in
                let key = (scenario_idx, cluster, mapper.Mapper.name) in
                let c = get_cell key in
                Running.add c.tries (float_of_int outcome.Mapper.tries);
                let c =
                  match outcome.Mapper.result with
                  | Error _ -> { c with failures = c.failures + 1 }
                  | Ok mapping ->
                    Running.add c.objective (Hmn_mapping.Mapping.objective mapping);
                    Running.add c.map_time outcome.Mapper.elapsed_s;
                    if config.simulate then begin
                      let sim = Hmn_emulation.Exec_sim.run ~app:config.app mapping in
                      Running.add c.makespan sim.Hmn_emulation.Exec_sim.makespan_s;
                      Hmn_emulation.Correlate.observe correlation
                        ~group:
                          (Scenario.label scenario ^ " "
                          ^ Scenario.cluster_label cluster)
                        ~objective:(Hmn_mapping.Mapping.objective mapping)
                        ~makespan_s:sim.Hmn_emulation.Exec_sim.makespan_s
                    end;
                    { c with successes = c.successes + 1 }
                in
                Hashtbl.replace cells key c;
                if config.verbose then
                  Printf.eprintf "[%s %s rep %d] %s: %s\n%!" (Scenario.label scenario)
                    (Scenario.cluster_label cluster) rep mapper.Mapper.name
                    (match outcome.Mapper.result with
                    | Ok _ -> "ok"
                    | Error f -> "FAIL " ^ f.Mapper.stage))
              config.mappers
          done)
        clusters)
    scenarios;
  { config; scenarios; cells; correlation }

let cell results ~scenario ~cluster ~mapper =
  Hashtbl.find_opt results.cells (scenario, cluster, mapper)

let mapper_names results = List.map (fun m -> m.Mapper.name) results.config.mappers
