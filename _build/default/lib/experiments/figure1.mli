(** Figure 1: HMN mapping wall-clock time (mean ± standard deviation)
    as a function of the number of virtual links being mapped, on the
    torus cluster. *)

type point = {
  n_guests : int;
  n_vlinks : int;  (** of the generated instance (x-axis) *)
  inter_host_links : int;  (** links that actually reached A\*Prune *)
  mean_s : float;
  stddev_s : float;
  reps : int;
}

val default_sweep : (int * float * Scenario.workload_kind) list
(** (guests, density, workload) steps spanning the paper's range of
    link counts, from ~100 links up to the 2000-guest / ~20 000-link
    extreme discussed in §5.2. *)

val run :
  ?sweep:(int * float * Scenario.workload_kind) list ->
  ?reps:int ->
  ?seed:int ->
  unit ->
  point list
(** Runs HMN on each sweep step on the torus cluster; [reps] defaults
    to the [HMN_REPS] environment variable or 3. Failed mappings are
    skipped (they do not contribute a time). *)

val render : point list -> string
(** Text rendering of the series, with an ASCII bar per point. *)
