(** Renderers that regenerate the paper's Table 2 and Table 3 from a
    {!Runner.results}. Layout mirrors the paper: one row per scenario,
    heuristic columns grouped by cluster, ["-"] where a heuristic never
    produced a valid mapping, and (for Table 2) a final failure-count
    row. *)

val table2 : Runner.results -> string
(** Mean objective function (load-balance factor, MIPS) + failures. *)

val table3 : Runner.results -> string
(** Mean simulated experiment execution time (seconds). *)

val mapping_time : Runner.results -> string
(** Companion table: mean wall-clock of the mapping itself (seconds) —
    the quantity behind the paper's "mapping took 30 minutes for 2000
    guests on the torus / under a second on the switched cluster"
    discussion. *)

val correlation_report : Runner.results -> string
(** The §5.2 claim: Pearson (and Spearman) correlation between
    objective value and simulated experiment time over all successful
    runs. *)
