let n_hosts = 40
let torus_rows = 5
let torus_cols = 8
let switch_ports = 64
let physical_link = Hmn_testbed.Link.gigabit
let paper_repetitions = 30
let fit_fraction = 0.85
let vmm = Hmn_testbed.Vmm.none
let host_profile = Hmn_testbed.Cluster_gen.table1_profile

let render () =
  let t =
    Hmn_prelude.Pretty_table.create
      ~aligns:Hmn_prelude.Pretty_table.[ Left; Left; Left; Left ]
      ~header:[ ""; "Physical env"; "Low-level workload"; "High-level workload" ]
      ()
  in
  let row = Hmn_prelude.Pretty_table.add_row t in
  row [ "topology"; "2-D torus (5x8), switched (64-port)"; "graph, density 0.01";
        "graph, density 0.015-0.025" ];
  row [ "bandwidth"; "1Gbps"; "87kbps-175kbps"; "0.5Mbps-1Mbps" ];
  row [ "latency"; "5ms"; "30ms-60ms"; "30ms-60ms" ];
  row [ "nodes"; "40"; "800-2000"; "100-400" ];
  row [ "memory"; "1GB-3GB"; "19MB-38MB"; "128MB-256MB" ];
  row [ "storage"; "1TB-3TB"; "19GB-38GB"; "100GB-200GB" ];
  row [ "CPU"; "1000-3000 MIPS"; "19-38 MIPS"; "50-100 MIPS" ];
  Hmn_prelude.Pretty_table.render t
