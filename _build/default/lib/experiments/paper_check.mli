(** Machine-checked reproduction claims.

    EXPERIMENTS.md states which of the paper's qualitative findings
    this reproduction reproduces; this module checks them against an
    actual {!Runner.results}, so the claims cannot silently rot as the
    code evolves. Each check returns a verdict with the numbers it
    derived; the renderer prints a ✔/✘ checklist, and the test suite
    asserts the expected verdicts on a small sweep. *)

type verdict = {
  claim : string;  (** the paper's finding, paraphrased *)
  holds : bool;
  detail : string;  (** the measured numbers behind the verdict *)
}

val check_all : Runner.results -> verdict list
(** The checklist:
    - HMN's mean objective beats R and RA on a large majority of
      scenario/cluster cells (paper: all rows);
    - HMN's advantage over RA shrinks from the lowest to the highest
      high-level ratio (migration starves as hosts fill);
    - R and RA objectives are within 10% of each other on most cells
      (routing does not move the placement objective);
    - HMN's failure count does not exceed the A\*Prune-based RA's by
      more than a handful (both route with A\*Prune);
    - simulated experiment time grows with the ratio for HMN on both
      clusters;
    - HMN's mean simulated experiment time beats R's on most cells;
    - the median within-scenario objective↔makespan Pearson
      correlation is at least 0.5 (paper: 0.7). *)

val render : verdict list -> string

val all_hold : verdict list -> bool
