module Running = Hmn_stats.Running

let stat_fields r =
  if Running.count r = 0 then ","
  else Printf.sprintf "%.6f,%.6f" (Running.mean r) (Running.stddev r)

let cells results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "scenario,cluster,heuristic,successes,failures,obj_mean,obj_sd,maptime_mean,maptime_sd,makespan_mean,makespan_sd,tries_mean\n";
  Array.iteri
    (fun idx scenario ->
      List.iter
        (fun cluster ->
          List.iter
            (fun mapper ->
              match Runner.cell results ~scenario:idx ~cluster ~mapper with
              | None -> ()
              | Some c ->
                Buffer.add_string buf
                  (Printf.sprintf "%s,%s,%s,%d,%d,%s,%s,%s,%.2f\n"
                     (Scenario.label scenario)
                     (Scenario.cluster_label cluster)
                     mapper c.Runner.successes c.Runner.failures
                     (stat_fields c.Runner.objective)
                     (stat_fields c.Runner.map_time)
                     (stat_fields c.Runner.makespan)
                     (if Running.count c.Runner.tries = 0 then 0.
                      else Running.mean c.Runner.tries)))
            (Runner.mapper_names results))
        [ Scenario.Torus; Scenario.Switched ])
    results.Runner.scenarios;
  Buffer.contents buf

let figure1 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "n_guests,n_vlinks,inter_host_links,mean_s,stddev_s,reps\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%.6f,%.6f,%d\n" p.Figure1.n_guests
           p.Figure1.n_vlinks p.Figure1.inter_host_links p.Figure1.mean_s
           p.Figure1.stddev_s p.Figure1.reps))
    points;
  Buffer.contents buf
