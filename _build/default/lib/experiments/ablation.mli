(** Ablation studies for the design choices DESIGN.md calls out.

    Three questions, each answered with a small deterministic sweep and
    rendered as a text table:

    - {b Migration}: what does the second HMN stage buy? (HMN vs the
      HN variant, objective and simulated experiment time.)
    - {b Routing metric}: why maximize bottleneck bandwidth? The same
      placements are routed with the paper's A\*Prune, with
      minimum-latency Dijkstra, and with first-feasible DFS; success
      rate, residual-network utilization and path quality are
      compared.
    - {b Topology}: the paper claims HMN handles "arbitrary cluster
      networks"; HMN runs over seven physical fabrics (torus, switched,
      mesh, ring, line, hypercube, fat-tree) at a fixed guests-per-host
      ratio. *)

val migration : ?reps:int -> ?seed:int -> unit -> string

val routing_metric : ?reps:int -> ?seed:int -> unit -> string

val topology_sweep : ?reps:int -> ?seed:int -> unit -> string

val affinity : ?reps:int -> ?seed:int -> unit -> string
(** The §5.2 argument for Hosting-by-affinity, reproduced directly: a
    fraction of the virtual links demand {e more bandwidth than any
    physical link has} (1.5 Gbps on a 1 Gbps fabric), so a valid
    mapping exists only if those links' endpoints share a host. HMN's
    affinity-driven Hosting co-locates them; random placement almost
    never does. The table reports success counts per heuristic. *)

val shape_sweep : ?reps:int -> ?seed:int -> unit -> string
(** HMN across virtual-topology families (the paper's density model
    plus star, tree, scale-free and Waxman overlays): success,
    objective, intra-host link share. *)

val feasibility : ?reps:int -> ?seed:int -> unit -> string
(** Sensitivity of the failure counts to the feasibility calibration
    (DESIGN.md §3): the 10:1 high-level scenario is generated at
    aggregate-memory targets from 70% to the uncalibrated ~96%, and
    every paper heuristic is run at each level. This is the data
    behind choosing {!Setup.fit_fraction} = 0.85: beyond ~90% every
    algorithm collapses, which the paper's reported failure counts
    rule out. *)

val all : ?reps:int -> ?seed:int -> unit -> string
(** All six studies concatenated. *)
