type workload_kind = High_level | Low_level

type cluster_kind = Torus | Switched

type t = {
  ratio : float;
  density : float;
  workload : workload_kind;
}

let paper_scenarios =
  let high =
    List.concat_map
      (fun density ->
        List.map
          (fun ratio -> { ratio; density; workload = High_level })
          [ 2.5; 5.; 7.5; 10. ])
      [ 0.015; 0.02; 0.025 ]
  in
  let low =
    List.map
      (fun ratio -> { ratio; density = 0.01; workload = Low_level })
      [ 20.; 30.; 40.; 50. ]
  in
  high @ low

let n_guests t =
  int_of_float (Float.round (t.ratio *. float_of_int Setup.n_hosts))

let profile t =
  match t.workload with
  | High_level -> Hmn_vnet.Workload.high_level
  | Low_level -> Hmn_vnet.Workload.low_level

let label t =
  let ratio =
    if Float.is_integer t.ratio then Printf.sprintf "%.0f:1" t.ratio
    else Printf.sprintf "%.1f:1" t.ratio
  in
  Printf.sprintf "%s %.3g" ratio t.density

let cluster_label = function Torus -> "2-D Torus" | Switched -> "Switched"

let build_cluster kind ~rng =
  match kind with
  | Torus ->
    Hmn_testbed.Cluster_gen.torus_cluster ~vmm:Setup.vmm ~profile:Setup.host_profile
      ~link:Setup.physical_link ~rows:Setup.torus_rows ~cols:Setup.torus_cols ~rng ()
  | Switched ->
    Hmn_testbed.Cluster_gen.switched_cluster ~vmm:Setup.vmm
      ~profile:Setup.host_profile ~link:Setup.physical_link
      ~ports:Setup.switch_ports ~n:Setup.n_hosts ~rng ()

let build t kind ~seed =
  let rng = Hmn_rng.Rng.create seed in
  let cluster = build_cluster kind ~rng in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, Setup.fit_fraction)
      ~profile:(profile t) ~n:(n_guests t) ~density:t.density ~rng ()
  in
  Hmn_mapping.Problem.make ~cluster ~venv
