(** One-call reproduction of the whole evaluation section. *)

val full : ?config:Runner.config -> ?figure1_reps:int -> unit -> string
(** Runs the Table 2/3 sweep and the Figure 1 sweep and renders Table
    1 (setup), Table 2, Table 3, the mapping-time companion table, the
    correlation report, and Figure 1, as one text document. *)
