(** Minimum-latency routing — the ablation comparator for the paper's
    bottleneck-bandwidth metric choice (§4.3).

    Runs Dijkstra over the physical links that still have the required
    residual bandwidth, minimizing accumulated latency, and accepts the
    result if it meets the latency bound. Unlike {!Astar_prune} it pays
    no attention to {e how much} bandwidth a link has left beyond the
    demand, so it tends to pile virtual links onto the same short
    physical paths — exactly the behaviour the paper's metric is
    designed to avoid. *)

val route :
  residual:Residual.t ->
  src:int ->
  dst:int ->
  bandwidth_mbps:float ->
  latency_ms:float ->
  unit ->
  Path.t option
(** [src = dst] yields the trivial path. Raises [Invalid_argument] like
    {!Astar_prune.route}. *)
