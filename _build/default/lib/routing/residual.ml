module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster

type t = {
  cluster : Cluster.t;
  avail : float array;
}

let capacity t eid = (Cluster.link t.cluster eid).Hmn_testbed.Link.bandwidth_mbps

let create cluster =
  let n = Graph.n_edges (Cluster.graph cluster) in
  let t = { cluster; avail = Array.make n 0. } in
  for eid = 0 to n - 1 do
    t.avail.(eid) <- capacity t eid
  done;
  t

let copy t = { t with avail = Array.copy t.avail }

let cluster t = t.cluster

let available t eid = t.avail.(eid)

let reserve_path t path bw =
  if bw < 0. then invalid_arg "Residual.reserve_path: negative bandwidth";
  (* Check everything before touching anything, so failure is atomic.
     A path never repeats an edge (loop-free), so per-edge single
     deduction is correct. *)
  let shortage = ref None in
  Path.iter_edges path (fun eid ->
      if !shortage = None && t.avail.(eid) < bw then shortage := Some eid);
  match !shortage with
  | Some eid ->
    Error
      (Printf.sprintf "edge %d: needs %.3f Mbps, only %.3f available" eid bw
         t.avail.(eid))
  | None ->
    Path.iter_edges path (fun eid -> t.avail.(eid) <- t.avail.(eid) -. bw);
    Ok ()

let release_path t path bw =
  if bw < 0. then invalid_arg "Residual.release_path: negative bandwidth";
  Path.iter_edges path (fun eid ->
      let next = t.avail.(eid) +. bw in
      if next > capacity t eid +. 1e-6 then
        invalid_arg "Residual.release_path: release exceeds capacity";
      t.avail.(eid) <- next)

let used t eid = capacity t eid -. t.avail.(eid)

let utilization t =
  let n = Array.length t.avail in
  if n = 0 then 0.
  else begin
    let acc = ref 0. in
    for eid = 0 to n - 1 do
      acc := !acc +. (used t eid /. capacity t eid)
    done;
    !acc /. float_of_int n
  end
