(** Residual bandwidth bookkeeping over a cluster's physical links.

    Enforces Eq. (9): the bandwidths of the virtual links routed over a
    physical link may never exceed its capacity. Links are undirected
    shared capacity, matching the paper's model. *)

type t

val create : Hmn_testbed.Cluster.t -> t
(** All links at full capacity. *)

val copy : t -> t

val cluster : t -> Hmn_testbed.Cluster.t

val available : t -> int -> float
(** Remaining bandwidth (Mbps) of a physical edge id. *)

val reserve_path : t -> Path.t -> float -> (unit, string) result
(** Atomically reserves [bw] on every edge of the path; fails (leaving
    the state untouched) when any edge lacks capacity. Reserving on the
    intra-host path is a no-op. *)

val release_path : t -> Path.t -> float -> unit
(** Returns previously reserved bandwidth. Raises [Invalid_argument] if
    a release would exceed an edge's full capacity. *)

val used : t -> int -> float
(** Capacity minus availability. *)

val utilization : t -> float
(** Mean used/capacity over all physical links (0 when the cluster has
    no links). *)
