module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster

type t = {
  nodes : int array;
  edges : int array;
}

let make ~nodes ~edges =
  let nodes = Array.of_list nodes and edges = Array.of_list edges in
  if Array.length nodes = 0 then invalid_arg "Path.make: empty node list";
  if Array.length edges <> Array.length nodes - 1 then
    invalid_arg "Path.make: edge/node length mismatch";
  { nodes; edges }

let trivial v = { nodes = [| v |]; edges = [||] }

let src t = t.nodes.(0)
let dst t = t.nodes.(Array.length t.nodes - 1)
let hop_count t = Array.length t.edges
let is_intra_host t = Array.length t.edges = 0

let mem_edge t eid = Array.exists (Int.equal eid) t.edges
let iter_edges t f = Array.iter f t.edges

let total_latency cluster t =
  Hmn_prelude.Array_ext.sum_by
    (fun eid -> (Cluster.link cluster eid).Hmn_testbed.Link.latency_ms)
    t.edges

let bottleneck ~capacity t =
  if is_intra_host t then infinity
  else Array.fold_left (fun acc eid -> Float.min acc (capacity eid)) infinity t.edges

let validate cluster ~src:s ~dst:d t =
  let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt in
  if src t <> s then fail "path starts at %d, expected %d" (src t) s
  else if dst t <> d then fail "path ends at %d, expected %d" (dst t) d
  else begin
    let g = Cluster.graph cluster in
    let n = Array.length t.nodes in
    let seen = Hashtbl.create n in
    let rec check i =
      if i >= n then Ok ()
      else if Hashtbl.mem seen t.nodes.(i) then
        fail "node %d repeats on the path" t.nodes.(i)
      else begin
        Hashtbl.add seen t.nodes.(i) ();
        if i = n - 1 then Ok ()
        else begin
          let eid = t.edges.(i) in
          if eid < 0 || eid >= Graph.n_edges g then fail "edge %d out of range" eid
          else begin
            let u, v = Graph.endpoints g eid in
            let a = t.nodes.(i) and b = t.nodes.(i + 1) in
            if (a = u && b = v) || (a = v && b = u) then check (i + 1)
            else fail "edge %d does not join nodes %d and %d" eid a b
          end
        end
      end
    in
    check 0
  end

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat " - " (Array.to_list (Array.map string_of_int t.nodes)))
