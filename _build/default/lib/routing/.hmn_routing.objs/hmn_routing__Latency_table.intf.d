lib/routing/latency_table.mli: Hmn_testbed
