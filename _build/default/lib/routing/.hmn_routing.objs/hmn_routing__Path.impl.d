lib/routing/path.ml: Array Float Format Hashtbl Hmn_graph Hmn_prelude Hmn_testbed Int String
