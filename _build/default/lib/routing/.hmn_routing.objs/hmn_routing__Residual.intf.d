lib/routing/residual.mli: Hmn_testbed Path
