lib/routing/dfs_route.ml: Array Hmn_dstruct Hmn_graph Hmn_rng Hmn_testbed List Path Residual
