lib/routing/latency_table.ml: Hashtbl Hmn_graph Hmn_testbed
