lib/routing/astar_prune.mli: Latency_table Path Residual
