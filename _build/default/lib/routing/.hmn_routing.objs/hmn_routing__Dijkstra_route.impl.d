lib/routing/dijkstra_route.ml: Array Hmn_graph Hmn_testbed Path Residual
