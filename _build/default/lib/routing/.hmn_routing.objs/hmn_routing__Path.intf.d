lib/routing/path.mli: Format Hmn_testbed
