lib/routing/astar_prune.ml: Array Float Hmn_dstruct Hmn_graph Hmn_testbed Int Latency_table List Option Path Residual
