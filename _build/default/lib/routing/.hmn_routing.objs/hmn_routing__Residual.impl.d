lib/routing/residual.ml: Array Hmn_graph Hmn_testbed Path Printf
