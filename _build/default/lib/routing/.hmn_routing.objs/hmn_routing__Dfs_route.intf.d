lib/routing/dfs_route.mli: Hmn_rng Path Residual
