lib/routing/dijkstra_route.mli: Path Residual
