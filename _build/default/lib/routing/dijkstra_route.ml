module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster

let route ~residual ~src ~dst ~bandwidth_mbps ~latency_ms () =
  let cluster = Residual.cluster residual in
  let g = Cluster.graph cluster in
  let n = Graph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Dijkstra_route.route: endpoint out of range";
  if not (bandwidth_mbps > 0.) then
    invalid_arg "Dijkstra_route.route: bandwidth must be positive";
  if latency_ms < 0. then invalid_arg "Dijkstra_route.route: negative latency bound";
  if src = dst then Some (Path.trivial src)
  else begin
    (* Links lacking the demanded residual bandwidth become infinitely
       expensive, which Dijkstra treats as absent. *)
    let weight eid =
      if Residual.available residual eid >= bandwidth_mbps then
        (Cluster.link cluster eid).Hmn_testbed.Link.latency_ms
      else infinity
    in
    let res = Hmn_graph.Dijkstra.run g ~weight ~src in
    if res.Hmn_graph.Dijkstra.dist.(dst) > latency_ms then None
    else
      match Hmn_graph.Dijkstra.path_to res dst with
      | None -> None
      | Some (nodes, edges) -> Some (Path.make ~nodes ~edges)
  end
