(** Depth-first feasible-path search — the routing half of the paper's
    Random (R) and Hosting-with-Search (HS) baselines.

    Performs a plain DFS from the source, taking the first loop-free
    path that reaches the destination while respecting the residual
    bandwidth on every hop and the accumulated-latency bound. Unlike
    {!Astar_prune} it makes no attempt to preserve wide links, which is
    exactly the weakness the paper's comparison exposes. *)

val route :
  ?rng:Hmn_rng.Rng.t ->
  ?max_steps:int ->
  residual:Residual.t ->
  src:int ->
  dst:int ->
  bandwidth_mbps:float ->
  latency_ms:float ->
  unit ->
  Path.t option
(** Neighbors are explored in adjacency order, or in a random order
    when [rng] is given (the Random baseline shuffles so that retries
    explore different paths). [src = dst] yields the trivial path.
    [max_steps] bounds the number of node expansions; an exhausted
    budget counts as "no path" (proving infeasibility by exhaustive
    DFS is exponential, and the baselines retry anyway). Default:
    unbounded. Raises [Invalid_argument] like {!Astar_prune.route}. *)
