(** A path in the physical cluster: the sequence [P_j] of Eqs. (4)–(7).

    A path stores its node sequence and the edge ids joining consecutive
    nodes. The one-node path (empty edge list) represents an intra-host
    virtual link, which the paper treats as having infinite bandwidth
    and zero latency. *)

type t = private {
  nodes : int array;  (** [src ... dst], length >= 1 *)
  edges : int array;  (** physical edge ids, length = |nodes| - 1 *)
}

val make : nodes:int list -> edges:int list -> t
(** Raises [Invalid_argument] when lengths are inconsistent or the node
    list is empty. Structural validity against a cluster is checked
    separately by {!validate}. *)

val trivial : int -> t
(** The one-node (intra-host) path. *)

val src : t -> int
val dst : t -> int
val hop_count : t -> int
val is_intra_host : t -> bool

val mem_edge : t -> int -> bool
val iter_edges : t -> (int -> unit) -> unit

val total_latency : Hmn_testbed.Cluster.t -> t -> float
(** Sum of physical-link latencies along the path (0 for intra-host). *)

val bottleneck : capacity:(int -> float) -> t -> float
(** Minimum of [capacity] over the path's edges; [infinity] for the
    intra-host path (the paper's [bw((ci, ci)) = ∞]). *)

val validate :
  Hmn_testbed.Cluster.t -> src:int -> dst:int -> t -> (unit, string) result
(** Checks Eqs. (4)–(7): starts at [src], ends at [dst], consecutive
    nodes joined by the stated edges, and no repeated node (loop-free,
    which subsumes the paper's no-repeated-link condition). *)

val pp : Format.formatter -> t -> unit
