lib/stats/running.ml:
