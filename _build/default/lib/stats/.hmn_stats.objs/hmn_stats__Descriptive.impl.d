lib/stats/descriptive.ml: Array Float Format Hmn_prelude
