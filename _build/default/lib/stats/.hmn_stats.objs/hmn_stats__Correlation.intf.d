lib/stats/correlation.mli:
