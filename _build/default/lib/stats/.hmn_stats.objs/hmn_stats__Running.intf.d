lib/stats/running.mli:
