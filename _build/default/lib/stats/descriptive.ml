type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean xs = Hmn_prelude.Float_ext.mean xs

let variance ?(sample = false) xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.variance: empty input";
  let denom = if sample then n - 1 else n in
  if denom = 0 then invalid_arg "Descriptive.variance: need at least two samples";
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int denom

let stddev ?sample xs = sqrt (variance ?sample xs)

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.summarize: empty input";
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min infinity xs;
    max = Array.fold_left Float.max neg_infinity xs;
  }

let percentile xs ~p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.percentile: empty input";
  if p < 0. || p > 100. then invalid_arg "Descriptive.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else Hmn_prelude.Float_ext.lerp sorted.(lo) sorted.(hi) (rank -. float_of_int lo)

let median xs = percentile xs ~p:50.

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" s.n s.mean s.stddev
    s.min s.max
