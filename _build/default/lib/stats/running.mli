(** Welford's online mean/variance — used by the experiment runner to
    aggregate repetitions without retaining every sample. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Raises [Invalid_argument] before the first sample. *)

val stddev : t -> float
(** Population standard deviation; [0.] with a single sample. Raises
    before the first sample. *)

val min : t -> float
val max : t -> float
