(** Correlation coefficients — used to reproduce the paper's claim of a
    0.7 correlation between the objective function and the emulated
    experiment's execution time. *)

val pearson : float array -> float array -> float
(** Pearson's r. Raises [Invalid_argument] when lengths differ, fewer
    than two points are given, or either variable has zero variance. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson over average ranks; robust to
    the heavy right tail of execution times). Same preconditions. *)
