(** Descriptive statistics over float samples. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min : float;
  max : float;
}

val mean : float array -> float
(** Raises [Invalid_argument] on empty input. *)

val stddev : ?sample:bool -> float array -> float
(** Population standard deviation by default; [~sample:true] uses the
    (n-1) denominator. Raises on empty input (and on singleton input
    with [~sample:true]). *)

val variance : ?sample:bool -> float array -> float

val summarize : float array -> summary
(** Raises on empty input. *)

val percentile : float array -> p:float -> float
(** Linear-interpolation percentile, [p] in [[0, 100]]. Input need not
    be sorted. Raises on empty input or [p] out of range. *)

val median : float array -> float

val pp_summary : Format.formatter -> summary -> unit
