type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations *)
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n

let require_data t name =
  if t.n = 0 then invalid_arg ("Running." ^ name ^ ": no samples")

let mean t =
  require_data t "mean";
  t.mean

let stddev t =
  require_data t "stddev";
  sqrt (t.m2 /. float_of_int t.n)

let min t =
  require_data t "min";
  t.min

let max t =
  require_data t "max";
  t.max
