#!/bin/sh
# Formatting gate: verify the tree is ocamlformat-clean when ocamlformat
# is available.
#
# The CI/base image used for tier-1 does not ship ocamlformat, and dune
# fails @fmt outright when the binary is missing — so this script skips
# (exit 0) rather than failing in environments that cannot run the
# check. Developer machines with ocamlformat installed get the real
# check. Set HMN_SKIP_FMT=1 to opt out entirely.
#
# Modes:
#   (default)  dune build @fmt — for direct invocation from a shell
#   --fix      dune build @fmt --auto-promote
#   --direct   ocamlformat --check on every .ml/.mli, no dune involved;
#              this is the mode the tools/dune runtest rule uses, since a
#              rule cannot re-enter dune.
set -eu

if [ -n "${HMN_SKIP_FMT:-}" ]; then
  echo "check-fmt: HMN_SKIP_FMT set; skipping" >&2
  exit 0
fi

# Resolve the real source root: walk up from this script's directory
# until a .git (or a .ocamlformat) appears. When dune runs the --direct
# mode the script lives in _build/default/tools, so the walk correctly
# escapes the build directory back to the checkout.
root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
probe="$root"
while [ "$probe" != "/" ]; do
  if [ -e "$probe/.git" ] || [ -f "$probe/.ocamlformat" ]; then
    root="$probe"
    break
  fi
  probe=$(dirname -- "$probe")
done
cd "$root"

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check-fmt: ocamlformat not installed; skipping (tier-1 unaffected)" >&2
  exit 0
fi

want=$(sed -n 's/^version *= *//p' .ocamlformat 2>/dev/null || true)
have=$(ocamlformat --version 2>/dev/null || true)
if [ -n "$want" ] && [ "$have" != "$want" ]; then
  echo "check-fmt: ocamlformat $have != pinned $want; skipping" >&2
  exit 0
fi

case "${1:-}" in
--fix)
  exec dune build @fmt --auto-promote
  ;;
--direct)
  bad=0
  for f in $(
    for dir in bin lib test bench; do
      [ -d "$dir" ] || continue
      find "$dir" \( -name _build -o -name '.*' \) -prune -o \
        \( -name '*.ml' -o -name '*.mli' \) -print
    done
  ); do
    if ! ocamlformat --check "$f" >/dev/null 2>&1; then
      echo "check-fmt: $f is not formatted" >&2
      bad=1
    fi
  done
  if [ "$bad" -ne 0 ]; then
    echo "check-fmt: formatting check failed (run tools/check-fmt.sh --fix)" >&2
    exit 1
  fi
  echo "check-fmt: all files formatted"
  ;;
*)
  exec dune build @fmt
  ;;
esac
