#!/bin/sh
# Formatting gate: run `dune build @fmt` when ocamlformat is available.
#
# The CI/base image used for tier-1 does not ship ocamlformat, and dune
# fails @fmt outright when the binary is missing — so this script skips
# (exit 0) rather than failing in environments that cannot run the
# check. Developer machines with ocamlformat installed get the real
# check; pass --fix to also promote the formatted output.
set -eu

cd "$(dirname "$0")/.."

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check-fmt: ocamlformat not installed; skipping (tier-1 unaffected)" >&2
  exit 0
fi

want=$(sed -n 's/^version *= *//p' .ocamlformat)
have=$(ocamlformat --version 2>/dev/null || true)
if [ -n "$want" ] && [ "$have" != "$want" ]; then
  echo "check-fmt: ocamlformat $have != pinned $want; skipping" >&2
  exit 0
fi

if [ "${1:-}" = "--fix" ]; then
  exec dune build @fmt --auto-promote
fi
exec dune build @fmt
