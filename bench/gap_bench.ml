(* Optimality-gap bench for the exact branch-and-bound baseline.

   Runs the same fixed-seed instance grid as `hmn_cli gap` and records,
   per instance and aggregated per class, what the gap table does not
   show: nodes expanded, leaves reached, certification (Networking)
   runs, prune counters, the root-relaxation bound and its tightness
   against the proven optimum, and wall time. Written to BENCH_gap.json
   (path override: HMN_BENCH_GAP_JSON) for cross-PR perf tracking of
   the solver itself — a bound regression shows up as a node-count or
   tightness drift long before it breaks the pinned gap table.

   HMN_BENCH_FAST=1 runs one seed per class (the tier-1 smoke rule sets
   it); the full run uses the gap command's five. *)

module Gap = Hmn_experiments.Gap_report
module Solver = Hmn_exact.Solver
module Json = Hmn_prelude.Json

let fast = Sys.getenv_opt "HMN_BENCH_FAST" <> None
let schema_version = 1

let iso8601_now () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Root bound over proven optimum: 1.0 means the relaxation is exact at
   the root; the shortfall is the integrality gap the search closes. *)
let tightness (r : Gap.instance_run) =
  match r.Gap.optimum with
  | Some opt when opt > 1e-9 -> Some (r.Gap.root_bound /. opt)
  | _ -> None

let instance_json (r : Gap.instance_run) =
  let s = r.Gap.solver in
  Json.Obj
    [
      ("label", Json.str r.Gap.label);
      ("seed", Json.int r.Gap.seed);
      ("hosts", Json.int r.Gap.n_hosts);
      ("guests", Json.int r.Gap.n_guests);
      ( "optimum",
        match r.Gap.optimum with Some o -> Json.float o | None -> Json.Null );
      ("proven", Json.Bool r.Gap.proven);
      ("nodes", Json.int s.Solver.nodes);
      ("leaves", Json.int s.Solver.leaves);
      ("certifications", Json.int s.Solver.networking_runs);
      ("bound_prunes", Json.int s.Solver.bound_prunes);
      ("admissibility_rejects", Json.int s.Solver.admissibility_rejects);
      ("deadend_prunes", Json.int s.Solver.deadend_prunes);
      ("root_bound", Json.float r.Gap.root_bound);
      ("lower_bound", Json.float s.Solver.lower_bound);
      ( "bound_tightness",
        match tightness r with Some t -> Json.float t | None -> Json.Null );
      ("wall_s", Json.float r.Gap.wall_s);
    ]

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let class_json label (runs : Gap.instance_run list) =
  let nodes = List.map (fun r -> r.Gap.solver.Solver.nodes) runs in
  let walls = List.map (fun r -> r.Gap.wall_s) runs in
  let tight = List.filter_map tightness runs in
  let proven = List.length (List.filter (fun r -> r.Gap.proven) runs) in
  Printf.printf
    "  %-14s %d/%d proven, nodes mean=%.0f max=%d, tightness mean=%.4f, \
     wall mean=%.3fs\n%!"
    label proven (List.length runs)
    (mean (List.map float_of_int nodes))
    (List.fold_left max 0 nodes)
    (mean tight) (mean walls);
  Json.Obj
    [
      ("label", Json.str label);
      ("instances", Json.int (List.length runs));
      ("proven", Json.int proven);
      ("nodes_mean", Json.float (mean (List.map float_of_int nodes)));
      ("nodes_max", Json.int (List.fold_left max 0 nodes));
      ("bound_tightness_mean", Json.float (mean tight));
      ("wall_mean_s", Json.float (mean walls));
      ("wall_total_s", Json.float (List.fold_left ( +. ) 0. walls));
    ]

let () =
  print_endline "== gap bench: exact branch-and-bound baseline ==";
  let per_class = if fast then 1 else Gap.default_per_class in
  let runs = Gap.run ~per_class () in
  let labels =
    List.fold_left
      (fun acc r -> if List.mem r.Gap.label acc then acc else r.Gap.label :: acc)
      [] runs
    |> List.rev
  in
  let classes =
    List.map
      (fun label ->
        class_json label (List.filter (fun r -> r.Gap.label = label) runs))
      labels
  in
  let path =
    Option.value (Sys.getenv_opt "HMN_BENCH_GAP_JSON") ~default:"BENCH_gap.json"
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.int schema_version);
        ("generated_at", Json.str (iso8601_now ()));
        ("fast", Json.Bool fast);
        ("seed", Json.int Gap.default_seed);
        ("per_class", Json.int per_class);
        ("node_budget", Json.int Solver.default_config.Solver.node_budget);
        ("classes", Json.Arr classes);
        ("instances", Json.Arr (List.map instance_json runs));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s)\n" path
