(* Cluster-size scaling bench.

   Part 1 maps one deterministic instance per size along the
   40 -> 400 -> 4000 host axis (25:1 guests, ~1.5 vlinks per guest)
   with the scale pipeline and records per-stage wall time, the H/M/N
   split, the objective, and the independent validator's verdict in
   BENCH_scale.json (path override: HMN_BENCH_SCALE_JSON).

   Part 2 quantifies what this PR's routing changes buy at the
   400-host point by re-running the same placement against an in-bench
   reconstruction of the pre-PR hot path: eager per-host
   Dijkstra.distances_to latency tables and an adjacency-walking
   A*Prune (Graph.iter_adj + Cluster.link + Residual.available per
   arc) instead of the CSR slices and leaf-landmark tables.

   Part 3 is the routing micro-axis: per size, the same placement is
   routed by the retained list-based A*Prune (PR 5's engine), by the
   arena engine (bit-identical results), and by the arena engine with
   the opt-in path cache + tree fast path, recording routes/s,
   labels/route and cache/fast-path hit rates.

   Part 4 is the artifact export axis: per size, the part-1 mapping is
   compiled to deployable artifacts in both grammars (shell and JSON),
   decompiled, and cross-validated by the round-trip checker, recording
   compile and check wall time and artifact byte sizes.

   HMN_BENCH_FAST=1 caps the axes at 400 hosts (the tier-1 smoke rule
   sets it); the full run includes the 4000-host / 100 000-guest
   instance. *)

module Scale = Hmn_experiments.Scale
module Cluster = Hmn_testbed.Cluster
module Graph = Hmn_graph.Graph
module Bitset = Hmn_dstruct.Bitset
module Heap = Hmn_dstruct.Binary_heap
module Path = Hmn_routing.Path
module Residual = Hmn_routing.Residual
module Latency_table = Hmn_routing.Latency_table
module Json = Hmn_prelude.Json
module Clock = Hmn_prelude.Clock
module Mapper = Hmn_core.Mapper
module Hmn = Hmn_core.Hmn

let fast = Sys.getenv_opt "HMN_BENCH_FAST" <> None

(* v2: adds the routing micro-axis (routes/s, labels/route, cache hit
   rate, arena/accelerator speedups vs the retained list engine).
   v3: adds the artifact export axis (compile/check wall time and
   artifact bytes per grammar per size). *)
let schema_version = 3

let iso8601_now () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* ---- part 1: the size axis ---- *)

let sizes = if fast then [ 40; 400 ] else [ 40; 400; 4000 ]

let size_point ~hosts =
  let t0 = Clock.now_s () in
  let r = Scale.run ~validate:true ~shape:Scale.Clos ~hosts () in
  let wall_s = Clock.elapsed_s t0 in
  let mapped = Result.is_ok r.Scale.outcome.Mapper.result in
  Printf.printf "%5d hosts: %s  hosting=%.3fs migration=%.3fs networking=%.3fs\n%!"
    r.Scale.n_hosts
    (if mapped then "mapped" else "FAILED")
    r.Scale.report.Hmn.hosting_s r.Scale.report.Hmn.migration_s
    r.Scale.report.Hmn.networking_s;
  let lbf =
    match r.Scale.outcome.Mapper.result with
    | Ok mapping -> Json.float (Hmn_mapping.Mapping.objective mapping)
    | Error _ -> Json.Null
  in
  ( Result.to_option r.Scale.outcome.Mapper.result,
    Json.Obj
    [
      ("shape", Json.str (Scale.shape_name r.Scale.shape));
      ("hosts", Json.int r.Scale.n_hosts);
      ("racks", Json.int r.Scale.n_racks);
      ("guests", Json.int r.Scale.n_guests);
      ("vlinks", Json.int r.Scale.n_vlinks);
      ("mapped", Json.Bool mapped);
      ("lbf", lbf);
      ("valid", match r.Scale.valid with
        | Some v -> Json.Bool v
        | None -> Json.Null);
      ("hosting_s", Json.float r.Scale.report.Hmn.hosting_s);
      ("migration_s", Json.float r.Scale.report.Hmn.migration_s);
      ("networking_s", Json.float r.Scale.report.Hmn.networking_s);
      ("total_s", Json.float r.Scale.outcome.Mapper.elapsed_s);
      ("wall_s", Json.float wall_s);
    ] )

(* ---- part 4: artifact export axis ---- *)

(* Reuses the part-1 mapping: the cost under test is compile + check,
   not the mapping itself. *)
let export_point ~hosts mapping =
  match mapping with
  | None ->
    Printf.printf "%5d hosts: no mapping to export\n%!" hosts;
    Json.Obj [ ("hosts", Json.int hosts); ("mapped", Json.Bool false) ]
  | Some mapping ->
    let module Compile = Hmn_artifact.Compile in
    let t0 = Clock.now_s () in
    let shell = Compile.of_mapping ~format:Hmn_artifact.Spec.Shell mapping in
    let compile_shell_s = Clock.elapsed_s t0 in
    let t1 = Clock.now_s () in
    let json_b = Compile.of_mapping ~format:Hmn_artifact.Spec.Json mapping in
    let compile_json_s = Clock.elapsed_s t1 in
    let t2 = Clock.now_s () in
    let check_ok =
      match Hmn_artifact.Decompile.run ~files:shell.Compile.files with
      | Error _ -> false
      | Ok d ->
        Hmn_validate.Artifact_check.ok
          (Hmn_validate.Artifact_check.check ~mapping d)
    in
    let check_s = Clock.elapsed_s t2 in
    let shell_bytes = Compile.bytes shell and json_bytes = Compile.bytes json_b in
    Printf.printf
      "%5d hosts: compile shell=%.3fs json=%.3fs  check=%.3fs  bytes \
       shell=%d json=%d  %s\n\
       %!"
      hosts compile_shell_s compile_json_s check_s shell_bytes json_bytes
      (if check_ok then "faithful" else "VIOLATIONS");
    Json.Obj
      [
        ("hosts", Json.int hosts);
        ("mapped", Json.Bool true);
        ("compile_shell_s", Json.float compile_shell_s);
        ("compile_json_s", Json.float compile_json_s);
        ("check_s", Json.float check_s);
        ("shell_bytes", Json.int shell_bytes);
        ("json_bytes", Json.int json_bytes);
        ("check_ok", Json.Bool check_ok);
      ]

(* ---- part 2: pre-PR hot-path baseline at 400 hosts ---- *)

(* The pre-PR Latency_table: one eager Dijkstra (and one O(nodes)
   float table) per host destination, straight off the adjacency
   representation. *)
let old_precompute cluster =
  let g = Cluster.graph cluster in
  let weight eid = (Cluster.link cluster eid).Hmn_testbed.Link.latency_ms in
  let tables = Hashtbl.create 64 in
  Array.iter
    (fun dst ->
      Hashtbl.replace tables dst (Hmn_graph.Dijkstra.distances_to g ~weight ~dst))
    (Cluster.host_ids cluster);
  tables

(* The pre-PR A*Prune hot loop, reconstructed verbatim: float-array
   tables, Graph.iter_adj expansion, a Cluster.link record fetch and a
   Residual.available call per arc. Metrics/stats plumbing is dropped;
   the search order and results are identical to the shipped router. *)
type partial = {
  rev_nodes : int list;
  rev_edges : int list;
  last : int;
  hops : int;
  bottleneck : float;
  acc_latency : float;
  members : Bitset.t;
}

let compare_partial ar a b =
  let c = Float.compare b.bottleneck a.bottleneck in
  if c <> 0 then c
  else
    let proj p = p.acc_latency +. ar.(p.last) in
    let c = Float.compare (proj a) (proj b) in
    if c <> 0 then c else Int.compare a.hops b.hops

let old_route ~tables ~residual ~src ~dst ~bandwidth_mbps ~latency_ms =
  let cluster = Residual.cluster residual in
  let g = Cluster.graph cluster in
  let n = Graph.n_nodes g in
  if src = dst then Some (Path.trivial src)
  else begin
    let ar = Hashtbl.find tables dst in
    let heap = Heap.create ~cmp:(compare_partial ar) () in
    let labels = Array.make n [] in
    let dominated v ~bottleneck ~latency =
      List.exists (fun (b, l) -> b >= bottleneck && l <= latency) labels.(v)
    in
    let record v ~bottleneck ~latency =
      let current = labels.(v) in
      let rest =
        if List.exists (fun (b, l) -> b <= bottleneck && l >= latency) current
        then
          List.filter (fun (b, l) -> not (b <= bottleneck && l >= latency)) current
        else current
      in
      labels.(v) <- (bottleneck, latency) :: rest
    in
    let start_members = Bitset.create n in
    Bitset.add start_members src;
    if ar.(src) <= latency_ms then begin
      record src ~bottleneck:infinity ~latency:0.;
      Heap.push heap
        {
          rev_nodes = [ src ];
          rev_edges = [];
          last = src;
          hops = 1;
          bottleneck = infinity;
          acc_latency = 0.;
          members = start_members;
        }
    end;
    let result = ref None in
    let expand p =
      Graph.iter_adj g p.last (fun ~neighbor ~eid ->
          if not (Bitset.mem p.members neighbor) then begin
            let link = Cluster.link cluster eid in
            let avail = Residual.available residual eid in
            let acc_latency = p.acc_latency +. link.Hmn_testbed.Link.latency_ms in
            if avail < bandwidth_mbps then ()
            else if acc_latency +. ar.(neighbor) > latency_ms then ()
            else begin
              let bottleneck = Float.min p.bottleneck avail in
              if dominated neighbor ~bottleneck ~latency:acc_latency then ()
              else begin
                record neighbor ~bottleneck ~latency:acc_latency;
                let members = Bitset.copy p.members in
                Bitset.add members neighbor;
                Heap.push heap
                  {
                    rev_nodes = neighbor :: p.rev_nodes;
                    rev_edges = eid :: p.rev_edges;
                    last = neighbor;
                    hops = p.hops + 1;
                    bottleneck;
                    acc_latency;
                    members;
                  }
              end
            end
          end)
    in
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some p ->
        if p.last = dst then
          result :=
            Some
              (Path.make ~nodes:(List.rev p.rev_nodes)
                 ~edges:(List.rev p.rev_edges))
        else begin
          expand p;
          loop ()
        end
    in
    loop ();
    !result
  end

let baseline_comparison () =
  (* Same instance as part 1's 400-host point; Hosting + Migration run
     once, then the identical placement is routed by both hot paths.
     The two Networking wall times therefore differ only in table
     precompute + per-arc expansion cost. *)
  let problem = Scale.problem ~shape:Scale.Clos ~hosts:400 ~ratio:25 ~seed:42 in
  let cluster = problem.Hmn_mapping.Problem.cluster in
  let placement =
    match Hmn_core.Hosting.run_sharded ~jobs:1 problem with
    | Ok p ->
      ignore (Hmn_core.Migration.run ~max_moves:(4 * Cluster.n_hosts cluster) p);
      p
    | Error f -> failwith ("baseline: hosting failed: " ^ f.Mapper.reason)
  in
  (* Precompute, head to head. *)
  let t0 = Clock.now_s () in
  let new_tables = Latency_table.create cluster in
  Latency_table.precompute new_tables;
  let precompute_new_s = Clock.elapsed_s t0 in
  let t0 = Clock.now_s () in
  let old_tables = old_precompute cluster in
  let precompute_old_s = Clock.elapsed_s t0 in
  (* Routing, head to head, from identical placements; best of two
     runs each to keep allocator noise out of the ratio. The shipped
     path also re-runs its (near-free) precompute inside
     Networking.run; the baseline router receives its tables
     pre-built, which only flatters the baseline. *)
  let route_with ?router label =
    let once () =
      let p = Hmn_mapping.Placement.copy placement in
      let t0 = Clock.now_s () in
      (match Hmn_core.Networking.run ?router p with
      | Ok _ -> ()
      | Error f -> failwith ("baseline: networking failed: " ^ f.Mapper.reason));
      Clock.elapsed_s t0
    in
    let s = Float.min (once ()) (once ()) in
    Printf.printf "  networking (%s): %.3fs\n%!" label s;
    s
  in
  let networking_new_s = route_with "csr+landmarks" in
  let old_router ~residual ~latency_tables:_ ~src ~dst ~bandwidth_mbps
      ~latency_ms () =
    old_route ~tables:old_tables ~residual ~src ~dst ~bandwidth_mbps ~latency_ms
  in
  let networking_old_s = route_with ~router:old_router "adjacency baseline" in
  Printf.printf
    "  400 hosts: precompute %.4fs -> %.4fs (%.1fx), networking %.3fs -> %.3fs (%.2fx)\n%!"
    precompute_old_s precompute_new_s
    (precompute_old_s /. Float.max 1e-9 precompute_new_s)
    networking_old_s networking_new_s
    (networking_old_s /. Float.max 1e-9 networking_new_s);
  Json.Obj
    [
      ("hosts", Json.int (Cluster.n_hosts cluster));
      ("precompute_old_s", Json.float precompute_old_s);
      ("precompute_new_s", Json.float precompute_new_s);
      ("networking_old_s", Json.float networking_old_s);
      ("networking_new_s", Json.float networking_new_s);
      ( "precompute_speedup",
        Json.float (precompute_old_s /. Float.max 1e-9 precompute_new_s) );
      ( "networking_speedup",
        Json.float (networking_old_s /. Float.max 1e-9 networking_new_s) );
    ]

(* ---- part 3: routing micro-axis ---- *)

(* The engine this PR replaces, retained as the bench baseline: same
   CSR slices and leaf-landmark tables (so precompute and search order
   are identical), but per-label cons-lists, a copied membership bitset
   per generated label, and list-based Pareto sets — the allocation
   profile the arena engine eliminates. *)
let list_compare tab a b =
  let c = Float.compare b.bottleneck a.bottleneck in
  if c <> 0 then c
  else
    let proj p = p.acc_latency +. Latency_table.get tab p.last in
    let c = Float.compare (proj a) (proj b) in
    if c <> 0 then c else Int.compare a.hops b.hops

let list_route ~residual ~latency_tables ~src ~dst ~bandwidth_mbps ~latency_ms =
  let cluster = Residual.cluster residual in
  let n = Graph.n_nodes (Cluster.graph cluster) in
  if src = dst then Some (Path.trivial src)
  else begin
    let tab = Latency_table.to_destination latency_tables ~dst in
    let ar x = Latency_table.get tab x in
    let heap = Heap.create ~cmp:(list_compare tab) () in
    let csr = Cluster.csr cluster in
    let offsets = Hmn_graph.Csr.offsets csr
    and neighbors = Hmn_graph.Csr.neighbors csr
    and edge_ids = Hmn_graph.Csr.edge_ids csr in
    let latencies = Cluster.link_latencies cluster in
    let avails = Residual.availabilities residual in
    let labels = Array.make n [] in
    let dominated v ~bottleneck ~latency =
      List.exists (fun (b, l) -> b >= bottleneck && l <= latency) labels.(v)
    in
    let record v ~bottleneck ~latency =
      let current = labels.(v) in
      let rest =
        if List.exists (fun (b, l) -> b <= bottleneck && l >= latency) current
        then
          List.filter (fun (b, l) -> not (b <= bottleneck && l >= latency)) current
        else current
      in
      labels.(v) <- (bottleneck, latency) :: rest
    in
    let start_members = Bitset.create n in
    Bitset.add start_members src;
    if ar src <= latency_ms then begin
      record src ~bottleneck:infinity ~latency:0.;
      Heap.push heap
        {
          rev_nodes = [ src ];
          rev_edges = [];
          last = src;
          hops = 1;
          bottleneck = infinity;
          acc_latency = 0.;
          members = start_members;
        }
    end;
    let result = ref None in
    let expand p =
      let u = p.last in
      for k = offsets.(u) to offsets.(u + 1) - 1 do
        let neighbor = neighbors.(k) in
        if not (Bitset.mem p.members neighbor) then begin
          let eid = edge_ids.(k) in
          let avail = avails.(eid) in
          let acc_latency = p.acc_latency +. latencies.(eid) in
          if avail < bandwidth_mbps then ()
          else if acc_latency +. ar neighbor > latency_ms then ()
          else begin
            let bottleneck = Float.min p.bottleneck avail in
            if dominated neighbor ~bottleneck ~latency:acc_latency then ()
            else begin
              record neighbor ~bottleneck ~latency:acc_latency;
              let members = Bitset.copy p.members in
              Bitset.add members neighbor;
              Heap.push heap
                {
                  rev_nodes = neighbor :: p.rev_nodes;
                  rev_edges = eid :: p.rev_edges;
                  last = neighbor;
                  hops = p.hops + 1;
                  bottleneck;
                  acc_latency;
                  members;
                }
            end
          end
        end
      done
    in
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some p ->
        if p.last = dst then
          result :=
            Some
              (Path.make ~nodes:(List.rev p.rev_nodes)
                 ~edges:(List.rev p.rev_edges))
        else begin
          expand p;
          loop ()
        end
    in
    loop ();
    !result
  end

(* One size point of the routing micro-axis: Hosting + Migration run
   once, then the identical placement is routed three ways — the
   retained list engine, the arena engine (bit-identical results), and
   the arena engine with the opt-in path cache + tree fast path. Best
   of two runs each. *)
let routing_point ~hosts =
  let problem = Scale.problem ~shape:Scale.Clos ~hosts ~ratio:25 ~seed:42 in
  let cluster = problem.Hmn_mapping.Problem.cluster in
  let placement =
    match Hmn_core.Hosting.run_sharded problem with
    | Ok p ->
      ignore (Hmn_core.Migration.run ~max_moves:(4 * Cluster.n_hosts cluster) p);
      p
    | Error f -> failwith ("routing axis: hosting failed: " ^ f.Mapper.reason)
  in
  let time_run ?router ?(route_cache = false) ?(tree_fast_path = false) () =
    let once () =
      let p = Hmn_mapping.Placement.copy placement in
      let t0 = Clock.now_s () in
      match Hmn_core.Networking.run ?router ~route_cache ~tree_fast_path p with
      | Ok (_, s) -> (Clock.elapsed_s t0, s)
      | Error f ->
        failwith ("routing axis: networking failed: " ^ f.Mapper.reason)
    in
    let s1, st1 = once () in
    let s2, st2 = once () in
    if s1 <= s2 then (s1, st1) else (s2, st2)
  in
  let list_router ~residual ~latency_tables ~src ~dst ~bandwidth_mbps
      ~latency_ms () =
    list_route ~residual ~latency_tables ~src ~dst ~bandwidth_mbps ~latency_ms
  in
  let list_s, _ = time_run ~router:list_router () in
  let arena_s, arena_st = time_run () in
  let accel_s, accel_st = time_run ~route_cache:true ~tree_fast_path:true () in
  let routed = arena_st.Hmn_core.Networking.routed in
  let per_route total = float_of_int total /. float_of_int (max 1 routed) in
  let labels_per_route = per_route arena_st.Hmn_core.Networking.generated in
  let cache_hit_rate = per_route accel_st.Hmn_core.Networking.cache_hits in
  let fast_path_rate = per_route accel_st.Hmn_core.Networking.fast_path in
  Printf.printf
    "  %5d hosts: networking list=%.3fs arena=%.3fs (%.2fx) accel=%.3fs \
     (%.2fx)\n\
    \             %d routes, %.0f routes/s arena, %.1f labels/route, cache \
     %.1f%%, fast path %.1f%%\n\
     %!"
    (Cluster.n_hosts cluster) list_s arena_s
    (list_s /. Float.max 1e-9 arena_s)
    accel_s
    (list_s /. Float.max 1e-9 accel_s)
    routed
    (float_of_int routed /. Float.max 1e-9 arena_s)
    labels_per_route (100. *. cache_hit_rate) (100. *. fast_path_rate);
  Json.Obj
    [
      ("hosts", Json.int (Cluster.n_hosts cluster));
      ("routes", Json.int routed);
      ("intra_host", Json.int arena_st.Hmn_core.Networking.intra_host);
      ("networking_list_s", Json.float list_s);
      ("networking_arena_s", Json.float arena_s);
      ("networking_accel_s", Json.float accel_s);
      ("arena_speedup", Json.float (list_s /. Float.max 1e-9 arena_s));
      ("accel_speedup", Json.float (list_s /. Float.max 1e-9 accel_s));
      ( "routes_per_s_arena",
        Json.float (float_of_int routed /. Float.max 1e-9 arena_s) );
      ( "routes_per_s_accel",
        Json.float (float_of_int routed /. Float.max 1e-9 accel_s) );
      ("labels_per_route", Json.float labels_per_route);
      ("cache_hit_rate", Json.float cache_hit_rate);
      ("fast_path_rate", Json.float fast_path_rate);
    ]

(* Precompute-only head to head along the size axis: the old scheme is
   one Dijkstra (and one O(nodes) table) per host, the new one one per
   attachment switch — the gap widens with hosts-per-rack, and at 4000
   hosts the old all-pairs tables alone are ~hosts x nodes x 8 bytes. *)
let precompute_point ~hosts =
  let rng = Hmn_rng.Rng.create 42 in
  let cluster = Scale.cluster ~shape:Scale.Clos ~hosts ~rng in
  let t0 = Clock.now_s () in
  let tab = Latency_table.create cluster in
  Latency_table.precompute tab;
  let new_s = Clock.elapsed_s t0 in
  let t0 = Clock.now_s () in
  let old_tables = old_precompute cluster in
  let old_s = Clock.elapsed_s t0 in
  ignore (Hashtbl.length old_tables);
  Printf.printf "  %5d hosts: precompute %.4fs -> %.4fs (%.1fx)\n%!"
    (Cluster.n_hosts cluster) old_s new_s (old_s /. Float.max 1e-9 new_s);
  Json.Obj
    [
      ("hosts", Json.int (Cluster.n_hosts cluster));
      ("precompute_old_s", Json.float old_s);
      ("precompute_new_s", Json.float new_s);
      ("speedup", Json.float (old_s /. Float.max 1e-9 new_s));
    ]

let () =
  print_endline "== scale bench: size axis ==";
  let sized = List.map (fun hosts -> (hosts, size_point ~hosts)) sizes in
  let points = List.map (fun (_, (_, j)) -> j) sized in
  print_endline "== scale bench: pre-PR hot-path baseline (400 hosts) ==";
  let baseline = baseline_comparison () in
  print_endline "== scale bench: routing micro-axis ==";
  let routing_axis = List.map (fun hosts -> routing_point ~hosts) sizes in
  print_endline "== scale bench: precompute scaling ==";
  let precompute_axis =
    List.map (fun hosts -> precompute_point ~hosts) sizes
  in
  print_endline "== scale bench: artifact export axis ==";
  let export_axis =
    List.map (fun (hosts, (mapping, _)) -> export_point ~hosts mapping) sized
  in
  let path =
    Option.value
      (Sys.getenv_opt "HMN_BENCH_SCALE_JSON")
      ~default:"BENCH_scale.json"
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.int schema_version);
        ("generated_at", Json.str (iso8601_now ()));
        ("fast", Json.Bool fast);
        ("sizes", Json.Arr points);
        ("baseline_400", baseline);
        ("routing_axis", Json.Arr routing_axis);
        ("precompute_axis", Json.Arr precompute_axis);
        ("export_axis", Json.Arr export_axis);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s)\n" path
