(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Tables 2-3, the mapping-time discussion, the objective/runtime
   correlation, Figure 1) through Hmn_experiments; repetition counts
   come from HMN_REPS / HMN_MAX_TRIES (defaults 5 / 200; the paper used
   30 / 100000 — see EXPERIMENTS.md). The sweep fans out over HMN_JOBS
   worker domains (see "Parallel sweeps" in EXPERIMENTS.md); its wall
   time, jobs count and per-mapper mean mapping time are recorded in
   BENCH_sweep.json (path override: HMN_BENCH_JSON) so the perf
   trajectory can be tracked across PRs.

   Part 2 runs Bechamel micro-benchmarks: one Test.make per
   table/figure target plus the DESIGN.md ablations (Migration stage
   on/off, A*Prune dominance pruning on/off, A*Prune vs DFS routing).

   Set HMN_BENCH_FAST=1 to shrink part 1 to a smoke run (one
   repetition, retry cap 20, reduced Figure 1 / ablation sweeps), and
   HMN_BENCH_SKIP_MICRO=1 to skip part 2; the tier-1 smoke rule in
   bench/dune sets both together with HMN_JOBS=2. *)

open Bechamel
open Toolkit

let fast = Sys.getenv_opt "HMN_BENCH_FAST" <> None

(* ---- part 1: paper tables and figures ---- *)

(* Per-mapper mean mapping time, pooled over every (scenario, cluster)
   cell with Running.merge. *)
let mapper_map_times results =
  List.map
    (fun name ->
      let pooled =
        Hashtbl.fold
          (fun (_, _, mapper) cell acc ->
            if String.equal mapper name then
              Hmn_stats.Running.merge acc cell.Hmn_experiments.Runner.map_time
            else acc)
          results.Hmn_experiments.Runner.cells
          (Hmn_stats.Running.create ())
      in
      (name, pooled))
    (Hmn_experiments.Runner.mapper_names results)

(* Monotonically bumped when the JSON's shape changes, so the perf
   trajectory stays parseable as fields evolve. History:
   1 = the original unversioned shape (PR 1); 2 = adds schema_version,
   generated_at, and the optional metrics aggregates. *)
let schema_version = 2

let iso8601_now () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let write_sweep_json ~wall_s results =
  let module Json = Hmn_prelude.Json in
  let module Metrics = Hmn_obs.Metrics in
  let config = results.Hmn_experiments.Runner.config in
  let path =
    Option.value (Sys.getenv_opt "HMN_BENCH_JSON") ~default:"BENCH_sweep.json"
  in
  let per_mapper =
    List.map
      (fun (name, pooled) ->
        ( name,
          if Hmn_stats.Running.count pooled = 0 then Json.Null
          else Json.float (Hmn_stats.Running.mean pooled) ))
      (mapper_map_times results)
  in
  (* With HMN_METRICS set the sweep ran instrumented: fold the merged
     counter aggregates in, so the trajectory records search effort
     (label expansions, retries, ...) alongside wall time. *)
  let metrics_fields =
    if not config.Hmn_experiments.Runner.metrics then []
    else begin
      let snap = Metrics.snapshot () in
      [
        ( "metrics",
          Json.Obj
            [
              ( "counters",
                Json.Obj
                  (List.map
                     (fun (n, v) -> (n, Json.int v))
                     snap.Metrics.counters) );
              ( "gauge_maxima",
                Json.Obj
                  (List.map
                     (fun (n, v) -> (n, Json.int v))
                     snap.Metrics.gauge_maxima) );
            ] );
      ]
    end
  in
  let doc =
    Json.Obj
      ([
         ("schema_version", Json.int schema_version);
         ("generated_at", Json.str (iso8601_now ()));
         ("sweep_wall_s", Json.float wall_s);
         ("jobs", Json.int config.Hmn_experiments.Runner.jobs);
         ("reps", Json.int config.Hmn_experiments.Runner.reps);
         ("max_tries", Json.int config.Hmn_experiments.Runner.max_tries);
         ("base_seed", Json.int config.Hmn_experiments.Runner.base_seed);
         ("mean_map_time_s", Json.Obj per_mapper);
       ]
      @ metrics_fields)
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s)\n\n" path

let part1 () =
  let config =
    let c = Hmn_experiments.Runner.default_config () in
    if fast then
      {
        c with
        Hmn_experiments.Runner.reps = 1;
        max_tries = min c.Hmn_experiments.Runner.max_tries 20;
        mappers = Hmn_core.Registry.paper ~max_tries:20 ();
      }
    else c
  in
  print_endline "== Table 1: simulation setup ==";
  print_string (Hmn_experiments.Setup.render ());
  Printf.printf "(reps=%d, max_tries=%d, seed=%d, jobs=%d)\n\n"
    config.Hmn_experiments.Runner.reps config.Hmn_experiments.Runner.max_tries
    config.Hmn_experiments.Runner.base_seed config.Hmn_experiments.Runner.jobs;
  let t0 = Hmn_prelude.Clock.now_s () in
  let results = Hmn_experiments.Runner.run ~config () in
  let wall_s = Hmn_prelude.Clock.elapsed_s t0 in
  Printf.printf "(sweep wall time: %.1f s, jobs=%d)\n\n" wall_s
    config.Hmn_experiments.Runner.jobs;
  write_sweep_json ~wall_s results;
  print_endline "== Table 2: objective function and failures ==";
  print_string (Hmn_experiments.Tables.table2 results);
  print_newline ();
  print_endline "== Table 3: simulated experiment time ==";
  print_string (Hmn_experiments.Tables.table3 results);
  print_newline ();
  print_endline "== Mapping wall-clock time (cf. the paper's 5.2 discussion) ==";
  print_string (Hmn_experiments.Tables.mapping_time results);
  print_newline ();
  print_endline "== Objective vs experiment-time correlation (5.2) ==";
  print_string (Hmn_experiments.Tables.correlation_report results);
  print_newline ();
  print_endline "== Shape checks (EXPERIMENTS.md claims, machine-checked) ==";
  print_string
    (Hmn_experiments.Paper_check.render (Hmn_experiments.Paper_check.check_all results));
  print_newline ();
  print_endline "== Figure 1: HMN mapping time vs number of virtual links ==";
  let points =
    if fast then
      Hmn_experiments.Figure1.run
        ~sweep:
          [
            (100, 0.02, Hmn_experiments.Scenario.High_level);
            (200, 0.02, Hmn_experiments.Scenario.High_level);
          ]
        ~reps:1 ()
    else Hmn_experiments.Figure1.run ()
  in
  print_string (Hmn_experiments.Figure1.render points);
  print_newline ();
  print_endline "== Ablations (DESIGN.md: Migration / routing metric / topology) ==";
  print_string (Hmn_experiments.Ablation.all ~reps:(if fast then 1 else 3) ());
  print_newline ()

(* ---- part 2: micro-benchmarks ---- *)

(* Shared fixture: a representative high-level instance on each
   topology, plus a completed HMN mapping for the simulator bench. *)
type fixture = {
  torus : Hmn_mapping.Problem.t;
  switched : Hmn_mapping.Problem.t;
  placement : Hmn_mapping.Placement.t;  (* hosting output on torus *)
  hmn_mapping : Hmn_mapping.Mapping.t;
}

let build_fixture () =
  let build kind =
    let rng = Hmn_rng.Rng.create 4242 in
    let cluster = Hmn_experiments.Scenario.build_cluster kind ~rng in
    let venv =
      Hmn_vnet.Venv_gen.generate
        ~scale_to_fit:(cluster, Hmn_experiments.Setup.fit_fraction)
        ~profile:Hmn_vnet.Workload.high_level ~n:200 ~density:0.02 ~rng ()
    in
    Hmn_mapping.Problem.make ~cluster ~venv
  in
  let torus = build Hmn_experiments.Scenario.Torus in
  let switched = build Hmn_experiments.Scenario.Switched in
  let placement =
    match Hmn_core.Hosting.run torus with
    | Ok p -> p
    | Error f -> failwith ("bench fixture: hosting failed: " ^ f.Hmn_core.Mapper.reason)
  in
  let hmn_mapping =
    match (Hmn_core.Hmn.run torus).Hmn_core.Mapper.result with
    | Ok m -> m
    | Error f -> failwith ("bench fixture: HMN failed: " ^ f.Hmn_core.Mapper.reason)
  in
  { torus; switched; placement; hmn_mapping }

let mapper_test ~name ~problem mapper =
  let rng = Hmn_rng.Rng.create 99 in
  Test.make ~name
    (Staged.stage (fun () ->
         match (mapper.Hmn_core.Mapper.run ~rng problem).Hmn_core.Mapper.result with
         | Ok _ -> ()
         | Error _ -> ()))

let routing_fixture problem =
  ( Hmn_routing.Residual.create problem.Hmn_mapping.Problem.cluster,
    Hmn_routing.Latency_table.create problem.Hmn_mapping.Problem.cluster )

let tests fixture =
  let maprs = Hmn_core.Registry.paper ~max_tries:50 () in
  let by_name n = List.find (fun m -> m.Hmn_core.Mapper.name = n) maprs in
  [
    (* Table 2: the cost of producing each column's mapping. *)
    Test.make_grouped ~name:"table2"
      [
        mapper_test ~name:"HMN-torus" ~problem:fixture.torus (by_name "HMN");
        mapper_test ~name:"R-torus" ~problem:fixture.torus (by_name "R");
        mapper_test ~name:"RA-torus" ~problem:fixture.torus (by_name "RA");
        mapper_test ~name:"HS-torus" ~problem:fixture.torus (by_name "HS");
        mapper_test ~name:"HMN-switched" ~problem:fixture.switched (by_name "HMN");
      ];
    (* Table 3: the cost of one emulated-experiment simulation. *)
    Test.make_grouped ~name:"table3"
      [
        Test.make ~name:"exec-sim-200-guests"
          (Staged.stage (fun () ->
               ignore (Hmn_emulation.Exec_sim.run fixture.hmn_mapping)));
        Test.make ~name:"request-sim-200-guests"
          (Staged.stage (fun () ->
               ignore (Hmn_emulation.Request_sim.run fixture.hmn_mapping)));
      ];
    (* Figure 1: the Networking stage, which dominates mapping time. *)
    Test.make_grouped ~name:"figure1"
      [
        Test.make ~name:"networking-torus"
          (Staged.stage (fun () ->
               ignore (Hmn_core.Networking.run fixture.placement)));
      ];
    (* DESIGN.md ablations. *)
    Test.make_grouped ~name:"ablation"
      [
        mapper_test ~name:"HMN-full" ~problem:fixture.torus Hmn_core.Hmn.mapper;
        mapper_test ~name:"HN-no-migration" ~problem:fixture.torus
          Hmn_core.Hmn.mapper_without_migration;
        (let residual, tables = routing_fixture fixture.torus in
         Test.make ~name:"astar-dominance-on"
           (Staged.stage (fun () ->
                ignore
                  (Hmn_routing.Astar_prune.route ~residual ~latency_tables:tables
                     ~src:0 ~dst:21 ~bandwidth_mbps:1. ~latency_ms:60. ()))));
        (let residual, tables = routing_fixture fixture.torus in
         Test.make ~name:"astar-dominance-off"
           (Staged.stage (fun () ->
                ignore
                  (Hmn_routing.Astar_prune.route ~prune_dominated:false ~residual
                     ~latency_tables:tables ~src:0 ~dst:21 ~bandwidth_mbps:1.
                     ~latency_ms:60. ()))));
        (let residual, _ = routing_fixture fixture.torus in
         Test.make ~name:"dfs-route"
           (Staged.stage (fun () ->
                ignore
                  (Hmn_routing.Dfs_route.route ~residual ~src:0 ~dst:21
                     ~bandwidth_mbps:1. ~latency_ms:60. ()))));
      ];
  ]

let run_benchmarks fixture =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let grouped = Test.make_grouped ~name:"hmn" (tests fixture) in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        (* Skip aggregate group entries; only leaf tests carry a
           "group/test" name. *)
        if not (String.contains name '/') then acc
        else begin
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> (name, ns) :: acc
          | _ -> (name, nan) :: acc
        end)
      clock []
  in
  print_endline "== Micro-benchmarks (Bechamel, monotonic clock) ==";
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "%-40s (no estimate)\n" name
      else if ns > 1e6 then Printf.printf "%-40s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-40s %10.0f ns/run\n" name ns)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let () =
  part1 ();
  if Sys.getenv_opt "HMN_BENCH_SKIP_MICRO" = None then
    run_benchmarks (build_fixture ())
