(* Online-service benchmark: run the fixed-seed tenant stream on the
   paper's torus under each admission policy and record wall time plus
   the deterministic session statistics in BENCH_online.json (path
   override: HMN_BENCH_ONLINE_JSON), so the service's perf trajectory is
   tracked across PRs alongside BENCH_sweep.json.

   HMN_BENCH_FAST=1 shrinks the horizon to a smoke run; the tier-1 rule
   in bench/dune uses that mode. *)

module Json = Hmn_prelude.Json
module Service = Hmn_online.Service
module Session = Hmn_online.Session
module Flight = Hmn_online.Flight
module Quantile = Hmn_obs.Quantile

let fast = Sys.getenv_opt "HMN_BENCH_FAST" <> None
let schema_version = 2

let iso8601_now () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let () =
  let cluster =
    Hmn_experiments.Scenario.build_cluster Hmn_experiments.Scenario.Torus
      ~rng:(Hmn_rng.Rng.create 4242)
  in
  let config =
    {
      Service.default_config with
      seed = 4242;
      duration_s = (if fast then 900. else 3600.);
      validate = false;
    }
  in
  let policies = [ "HMN"; "R"; "HS" ] in
  let cells =
    List.map
      (fun name ->
        let policy =
          match Hmn_online.Admission.find_policy name with
          | Ok p -> p
          | Error e -> failwith e
        in
        let flight =
          Flight.create ~journal:false ~timeline:false ~quantiles:true cluster
        in
        let t0 = Hmn_prelude.Clock.now_s () in
        let s = Service.run ~flight ~cluster ~policy config in
        let wall_s = Hmn_prelude.Clock.elapsed_s t0 in
        (* wall-clock percentiles (ns -> ms) plus the deterministic
           work-unit percentiles, from the flight recorder's quantile
           histograms *)
        let ms q p =
          float_of_int (Quantile.quantile q p) /. 1e6
        in
        let admit_ms =
          match Flight.admit_ns flight with
          | None -> []
          | Some q ->
              [
                ("admit_ms_p50", Json.float (ms q 0.5));
                ("admit_ms_p99", Json.float (ms q 0.99));
                ("admit_ms_p999", Json.float (ms q 0.999));
              ]
        in
        let admit_work =
          match Flight.admit_work flight with
          | None -> []
          | Some q ->
              [
                ("admit_work_p50", Json.int (Quantile.quantile q 0.5));
                ("admit_work_p99", Json.int (Quantile.quantile q 0.99));
              ]
        in
        Printf.printf "%-4s %6.2f s wall  %s" name wall_s
          (Session.render_summary s);
        print_newline ();
        ( name,
          Json.Obj
            ([
               ("wall_s", Json.float wall_s);
               ("arrivals", Json.int s.Session.arrivals);
               ("acceptance", Json.float s.Session.acceptance);
               ("mean_tenants", Json.float s.Session.mean_tenants);
               ("mean_lbf", Json.float s.Session.mean_lbf);
               ("mean_fragmentation", Json.float s.Session.mean_fragmentation);
               ("defrag_moves", Json.int s.Session.defrag_moves);
             ]
            @ admit_ms @ admit_work) ))
      policies
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.int schema_version);
        ("generated_at", Json.str (iso8601_now ()));
        ("fast", Json.Bool fast);
        ("seed", Json.int config.Service.seed);
        ("duration_s", Json.float config.Service.duration_s);
        ("policies", Json.Obj cells);
      ]
  in
  let path =
    Option.value
      (Sys.getenv_opt "HMN_BENCH_ONLINE_JSON")
      ~default:"BENCH_online.json"
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s)\n" path
